"""Supervised job runner: admission, checkpointing, resume, isolation.

Fast suite (no markers): admission-queue semantics, journal recovery —
including the two corruptions an append-only log can suffer, a torn final
record and a replayed (duplicated) append — runner/`query_batch` trace
parity, resume-only-the-pending behaviour, BaseException propagation
(KeyboardInterrupt must abort, never become a per-query ErrorOutcome),
graceful drain, and per-query timeout composition.

The kill matrix (crash at every journal boundary) lives in
``test_jobs_crash.py``; stall detection in ``test_jobs_watchdog.py``.
Like its sibling job suites this one exercises real worker threads, so it
rides the chaos lane (``pytest -m chaos``) rather than the fast lane.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import JobConfig, JobError, JobRunner, Verdict
from repro.core.pipeline import ErrorOutcome
from repro.jobs import (
    AdmissionQueue,
    CheckpointedOutcome,
    ShedOutcome,
    read_journal,
)
from repro.jobs.checkpoint import (
    JOURNAL_NAME,
    KIND_OUTCOME,
    CheckpointJournal,
    journal_line,
)
from repro.jobs.faults import CountingQueryFn

pytestmark = pytest.mark.chaos

QUESTIONS = [
    "Acme collects the email address.",
    "Acme shares the usage information with analytics providers.",
    "Acme sells the contact information.",
    "Does Acme collect my name?",
]


def _trace(outcome) -> str:
    return json.dumps(outcome.as_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def baseline(pipeline, small_model):
    """Uninterrupted query_batch traces — the byte-identity reference."""
    batch = pipeline.query_batch(small_model, QUESTIONS, max_workers=1)
    return [_trace(o) for o in batch.outcomes]


# ---------------------------------------------------------------------------
# Admission queue
# ---------------------------------------------------------------------------


class TestAdmissionQueue:
    def test_admits_until_max_pending(self):
        q = AdmissionQueue(max_pending=2)
        assert q.admit("a")
        assert q.admit("b")
        assert q.pending == 2
        assert q.high_water == 2

    def test_backpressure_blocks_until_task_done(self):
        q = AdmissionQueue(max_pending=1)
        assert q.admit("a")
        admitted = []

        def feeder():
            admitted.append(q.admit("b", poll=0.005))

        thread = threading.Thread(target=feeder)
        thread.start()
        time.sleep(0.05)
        assert not admitted  # still blocked at the bound
        assert q.get() == "a"
        q.task_done()
        thread.join(timeout=5.0)
        assert admitted == [True]
        assert q.get() == "b"

    def test_blocked_admit_aborts_on_should_stop(self):
        q = AdmissionQueue(max_pending=1)
        assert q.admit("a")
        stop = threading.Event()
        results = []

        def feeder():
            results.append(q.admit("b", should_stop=stop.is_set, poll=0.005))

        thread = threading.Thread(target=feeder)
        thread.start()
        stop.set()
        thread.join(timeout=5.0)
        assert results == [False]

    def test_blocked_admit_wakes_on_task_done_without_polling(self):
        # PR 7: no poll period at all — the default admit sleeps purely on
        # the condition variable, so queue activity must wake it directly.
        q = AdmissionQueue(max_pending=1)
        assert q.admit("a")
        admitted = []

        def feeder():
            admitted.append(q.admit("b"))

        thread = threading.Thread(target=feeder)
        thread.start()
        time.sleep(0.05)
        assert not admitted
        assert q.get() == "a"
        started = time.monotonic()
        q.task_done()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert time.monotonic() - started < 1.0, "wakeup must not wait a poll tick"
        assert admitted == [True]

    def test_wake_makes_stop_flag_observed_immediately(self):
        q = AdmissionQueue(max_pending=1)
        assert q.admit("a")
        stop = threading.Event()
        results = []

        def feeder():
            results.append(q.admit("b", should_stop=stop.is_set))

        thread = threading.Thread(target=feeder)
        thread.start()
        time.sleep(0.05)
        assert thread.is_alive(), "feeder should be parked on the cv"
        stop.set()
        q.wake()
        thread.join(timeout=5.0)
        assert not thread.is_alive(), "wake() must rouse the blocked admit"
        assert results == [False]

    def test_shed_above_must_not_exceed_max_pending(self):
        # A threshold past the blocking bound would create a depth band
        # [max_pending, shed_above) that blocks instead of shedding,
        # contradicting admit()'s never-blocks contract.
        with pytest.raises(ValueError, match="shed_above"):
            AdmissionQueue(max_pending=1, shed_above=2)

    def test_shed_above_never_blocks(self):
        q = AdmissionQueue(max_pending=10, shed_above=1)
        assert q.admit("a")
        # Depth 1 >= shed threshold 1: refused immediately, no blocking.
        assert q.admit("b") is False
        q.get()
        q.task_done()
        assert q.admit("b")

    def test_pending_counts_in_flight_not_just_queued(self):
        q = AdmissionQueue(max_pending=4)
        q.admit("a")
        assert q.get() == "a"
        assert q.pending == 1  # popped but not completed
        q.task_done()
        assert q.pending == 0

    def test_get_returns_none_when_closed_and_empty(self):
        q = AdmissionQueue(max_pending=2)
        q.admit("a")
        q.close()
        assert q.get() == "a"
        assert q.get() is None
        assert q.admit("b") is False

    def test_drain_removes_unstarted_items(self):
        q = AdmissionQueue(max_pending=8)
        for item in ("a", "b", "c"):
            q.admit(item)
        assert q.get() == "a"  # in flight
        assert q.drain() == ["b", "c"]
        assert q.pending == 1  # the in-flight item remains accounted


# ---------------------------------------------------------------------------
# Journal recovery (satellite: torn final record + duplicated record)
# ---------------------------------------------------------------------------


def _write_journal(tmp_path, records):
    directory = tmp_path / "ckpt"
    with CheckpointJournal(directory) as journal:
        journal.write_header(QUESTIONS, company="Acme", revision=1)
        for index, question in records:
            journal.append_result(
                index, question, KIND_OUTCOME, Verdict.VALID, {"question": question}
            )
    return directory / JOURNAL_NAME


class TestJournalRecovery:
    def test_round_trip(self, tmp_path):
        path = _write_journal(tmp_path, [(0, QUESTIONS[0]), (1, QUESTIONS[1])])
        recovery = read_journal(path)
        assert recovery.header is not None
        assert recovery.header["questions"] == QUESTIONS
        assert sorted(recovery.completed) == [0, 1]
        assert not recovery.torn_tail
        assert recovery.duplicates == 0

    def test_missing_file_is_empty_recovery(self, tmp_path):
        recovery = read_journal(tmp_path / "nope" / JOURNAL_NAME)
        assert recovery.header is None
        assert recovery.completed == {}

    def test_torn_final_record_recovers_to_prefix(self, tmp_path):
        path = _write_journal(tmp_path, [(0, QUESTIONS[0]), (1, QUESTIONS[1])])
        text = path.read_text("utf-8")
        # Cut the last record mid-line: the torn write a kill produces.
        torn = text[: text.rindex("\n", 0, len(text) - 1) + 1 + 10]
        path.write_text(torn, "utf-8")
        recovery = read_journal(path)
        assert recovery.torn_tail
        assert sorted(recovery.completed) == [0]
        assert recovery.header is not None

    def test_checksum_corruption_ends_trusted_prefix(self, tmp_path):
        path = _write_journal(
            tmp_path, [(0, QUESTIONS[0]), (1, QUESTIONS[1]), (2, QUESTIONS[2])]
        )
        lines = path.read_text("utf-8").splitlines()
        # Flip a byte inside record 1's payload: checksum fails, and
        # records *after* it are no longer vouched for.
        lines[2] = lines[2].replace(QUESTIONS[1], QUESTIONS[1].upper(), 1)
        path.write_text("\n".join(lines) + "\n", "utf-8")
        recovery = read_journal(path)
        assert recovery.torn_tail
        assert sorted(recovery.completed) == [0]

    def test_duplicated_record_first_occurrence_wins(self, tmp_path):
        path = _write_journal(tmp_path, [(0, QUESTIONS[0]), (1, QUESTIONS[1])])
        # Replay record 0's append with a *different* trace: recovery must
        # keep the first occurrence and only count the duplicate.
        replay = journal_line(
            {
                "kind": KIND_OUTCOME,
                "index": 0,
                "question": QUESTIONS[0],
                "verdict": Verdict.INVALID.value,
                "trace": {"question": "replayed"},
            }
        )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(replay + "\n")
        recovery = read_journal(path)
        assert recovery.duplicates == 1
        assert sorted(recovery.completed) == [0, 1]
        assert recovery.completed[0]["verdict"] == Verdict.VALID.value
        assert "duplicate" in recovery.summary()

    def test_blank_lines_are_skipped(self, tmp_path):
        path = _write_journal(tmp_path, [(0, QUESTIONS[0])])
        path.write_text(path.read_text("utf-8") + "\n\n", "utf-8")
        recovery = read_journal(path)
        assert not recovery.torn_tail
        assert sorted(recovery.completed) == [0]


class TestJournalTailRepair:
    """Reopening a torn journal must repair the tear before appending.

    Without the repair, the first post-crash append coalesces onto the
    torn fragment: that line fails its checksum, and prefix recovery then
    silently distrusts every record the resumed run commits — the exact
    crash-resume-crash data loss the journal exists to prevent.
    """

    def test_reopen_truncates_torn_tail_before_appending(self, tmp_path):
        path = _write_journal(tmp_path, [(0, QUESTIONS[0])])
        raw = path.read_bytes()
        path.write_bytes(raw[:-20])  # kill tears record 0 mid-line
        with CheckpointJournal(tmp_path / "ckpt") as journal:
            assert journal.repaired_tail
            for index in (1, 2):
                journal.append_result(
                    index,
                    QUESTIONS[index],
                    KIND_OUTCOME,
                    Verdict.VALID,
                    {"question": QUESTIONS[index]},
                )
        recovery = read_journal(path)
        assert not recovery.torn_tail
        assert recovery.header is not None
        # The torn record is gone (pending again); the post-reopen
        # appends are fully trusted rather than lost past the tear.
        assert sorted(recovery.completed) == [1, 2]

    def test_reopen_of_intact_journal_repairs_nothing(self, tmp_path):
        path = _write_journal(tmp_path, [(0, QUESTIONS[0])])
        before = path.read_bytes()
        with CheckpointJournal(tmp_path / "ckpt") as journal:
            assert not journal.repaired_tail
        assert path.read_bytes() == before


# ---------------------------------------------------------------------------
# Runner end-to-end
# ---------------------------------------------------------------------------


class TestJobRunner:
    def test_traces_match_query_batch(self, pipeline, small_model, baseline):
        runner = JobRunner(pipeline, small_model, JobConfig(max_workers=1))
        result = runner.run(QUESTIONS)
        assert not result.aborted
        assert result.pending == []
        assert [_trace(o) for o in result.outcomes] == baseline

    def test_checkpointed_run_traces_identical(
        self, pipeline, small_model, tmp_path, baseline
    ):
        runner = JobRunner(
            pipeline,
            small_model,
            JobConfig(max_workers=1, checkpoint_dir=str(tmp_path / "ckpt")),
        )
        result = runner.run(QUESTIONS)
        assert [_trace(o) for o in result.outcomes] == baseline
        assert result.metrics.checkpoint_records == len(QUESTIONS)
        recovery = read_journal(tmp_path / "ckpt" / JOURNAL_NAME)
        assert sorted(recovery.completed) == list(range(len(QUESTIONS)))

    def test_resume_restores_all_executes_none(
        self, pipeline, small_model, tmp_path, baseline
    ):
        config = JobConfig(max_workers=1, checkpoint_dir=str(tmp_path / "ckpt"))
        JobRunner(pipeline, small_model, config).run(QUESTIONS)
        counting = CountingQueryFn(pipeline, small_model)
        result = JobRunner(
            pipeline, small_model, config, query_fn=counting
        ).resume()
        assert counting.by_index == {}  # nothing re-executed
        assert result.restored == len(QUESTIONS)
        assert all(isinstance(o, CheckpointedOutcome) for o in result.outcomes)
        assert [_trace(o) for o in result.outcomes] == baseline

    def test_resume_executes_only_pending(
        self, pipeline, small_model, tmp_path, baseline
    ):
        config = JobConfig(max_workers=1, checkpoint_dir=str(tmp_path / "ckpt"))
        JobRunner(pipeline, small_model, config).run(QUESTIONS)
        path = tmp_path / "ckpt" / JOURNAL_NAME
        # Drop the last two records: queries 2 and 3 become pending again.
        lines = path.read_text("utf-8").splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n", "utf-8")

        counting = CountingQueryFn(pipeline, small_model)
        result = JobRunner(
            pipeline, small_model, config, query_fn=counting
        ).resume()
        assert counting.by_index == {2: 1, 3: 1}
        assert result.restored == 2
        assert result.metrics.checkpoint_restored == 2
        assert [_trace(o) for o in result.outcomes] == baseline

    def test_resume_rejects_mismatched_suite(self, pipeline, small_model, tmp_path):
        config = JobConfig(max_workers=1, checkpoint_dir=str(tmp_path / "ckpt"))
        JobRunner(pipeline, small_model, config).run(QUESTIONS)
        with pytest.raises(JobError, match="does not match"):
            JobRunner(pipeline, small_model, config).resume(QUESTIONS[:2])

    def test_run_refuses_initialized_checkpoint_dir(
        self, pipeline, small_model, tmp_path
    ):
        # Recovery keeps the first header and first-occurrence records,
        # so running job B into job A's directory would make a later
        # resume restore A's verdicts under B's name.
        config = JobConfig(max_workers=1, checkpoint_dir=str(tmp_path / "ckpt"))
        JobRunner(pipeline, small_model, config).run(QUESTIONS)
        with pytest.raises(JobError, match="resume"):
            JobRunner(pipeline, small_model, config).run(QUESTIONS[:2])

    def test_resume_rejects_model_mismatch(
        self, pipeline, small_model, small_policy_text, tmp_path
    ):
        config = JobConfig(max_workers=1, checkpoint_dir=str(tmp_path / "ckpt"))
        JobRunner(pipeline, small_model, config).run(QUESTIONS)

        other_company = pipeline.process(small_policy_text, company="OtherCorp")
        with pytest.raises(JobError, match="refusing to mix"):
            JobRunner(pipeline, other_company, config).resume()

        other_revision = pipeline.process(small_policy_text)
        other_revision.revision = small_model.revision + 1
        with pytest.raises(JobError, match="refusing to mix"):
            JobRunner(pipeline, other_revision, config).resume()

    def test_resume_rejects_header_digest_mismatch(
        self, pipeline, small_model, tmp_path
    ):
        config = JobConfig(max_workers=1, checkpoint_dir=str(tmp_path / "ckpt"))
        JobRunner(pipeline, small_model, config).run(QUESTIONS)
        path = tmp_path / "ckpt" / JOURNAL_NAME
        lines = path.read_text("utf-8").splitlines()
        header = json.loads(lines[0])["record"]
        header["questions"] = list(QUESTIONS[:2])  # suite swapped, digest stale
        lines[0] = journal_line(header)
        path.write_text("\n".join(lines) + "\n", "utf-8")
        with pytest.raises(JobError, match="digest"):
            JobRunner(pipeline, small_model, config).resume()

    def test_resume_without_checkpoint_dir_rejected(self, pipeline, small_model):
        with pytest.raises(JobError, match="checkpoint_dir"):
            JobRunner(pipeline, small_model, JobConfig()).resume()

    def test_resume_empty_checkpoint_needs_questions(
        self, pipeline, small_model, tmp_path
    ):
        config = JobConfig(max_workers=1, checkpoint_dir=str(tmp_path / "ckpt"))
        with pytest.raises(JobError, match="header"):
            JobRunner(pipeline, small_model, config).resume()
        # With the suite supplied, an empty checkpoint starts from scratch.
        result = JobRunner(pipeline, small_model, config).resume(QUESTIONS)
        assert result.pending == []
        assert result.restored == 0

    def test_pipeline_run_and_resume_wrappers(
        self, pipeline, small_model, tmp_path, baseline
    ):
        config = JobConfig(max_workers=1, checkpoint_dir=str(tmp_path / "ckpt"))
        result = pipeline.run_job(small_model, QUESTIONS, job_config=config)
        assert [_trace(o) for o in result.outcomes] == baseline
        resumed = pipeline.resume_job(small_model, job_config=config)
        assert resumed.restored == len(QUESTIONS)
        assert [_trace(o) for o in resumed.outcomes] == baseline

    def test_pipeline_config_jobs_is_the_default(
        self, small_policy_text, tmp_path
    ):
        from repro import PipelineConfig, PolicyPipeline

        config = PipelineConfig(
            jobs=JobConfig(max_workers=1, checkpoint_dir=str(tmp_path / "ckpt"))
        )
        scoped = PolicyPipeline(config=config)
        model = scoped.process(small_policy_text)
        result = scoped.run_job(model, QUESTIONS[:2])  # config from pipeline
        assert result.metrics.checkpoint_records == 2
        assert (tmp_path / "ckpt" / JOURNAL_NAME).exists()

    def test_error_isolation_matches_query_batch(self, pipeline, small_model):
        def flaky(index, question, certify, heartbeat):
            if index == 1:
                raise RuntimeError("injected backend failure")
            return pipeline.query(small_model, question, certify=certify)

        runner = JobRunner(
            pipeline, small_model, JobConfig(max_workers=1), query_fn=flaky
        )
        result = runner.run(QUESTIONS)
        assert isinstance(result.outcomes[1], ErrorOutcome)
        assert result.outcomes[1].error_type == "RuntimeError"
        assert result.metrics.query_errors == 1
        assert not result.aborted  # fault isolated, job completed


class TestLoadShedding:
    def test_overflow_queries_shed_to_unknown(self, pipeline, small_model):
        config = JobConfig(max_workers=1, max_pending=4, shed_above=1)
        runner = JobRunner(pipeline, small_model, config)

        def first_waits_for_sheds(index, question, certify, heartbeat):
            # Hold query 0 in flight until every other query has been
            # shed, so the shed set is deterministic, not schedule-luck.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with runner._lock:
                    if runner._remaining <= 1:
                        break
                time.sleep(0.002)
            return pipeline.query(small_model, question, certify=certify)

        runner._query_fn = first_waits_for_sheds
        result = runner.run(QUESTIONS)
        assert result.shed == len(QUESTIONS) - 1
        assert result.metrics.shed_queries == len(QUESTIONS) - 1
        for outcome in result.outcomes[1:]:
            assert isinstance(outcome, ShedOutcome)
            assert outcome.verdict is Verdict.UNKNOWN
            assert outcome.shed_above == 1
        assert not isinstance(result.outcomes[0], ShedOutcome)

    def test_high_water_tracked(self, pipeline, small_model):
        config = JobConfig(max_workers=2, max_pending=2)
        result = JobRunner(pipeline, small_model, config).run(QUESTIONS)
        assert 1 <= result.metrics.queue_high_water <= 2


# ---------------------------------------------------------------------------
# BaseException propagation (satellite: interruption is never an outcome)
# ---------------------------------------------------------------------------


class TestInterruptPropagation:
    def test_query_batch_propagates_keyboard_interrupt(
        self, pipeline, small_model, monkeypatch
    ):
        real_query = pipeline.query

        def interrupted(model, question, **kwargs):
            if question == QUESTIONS[1]:
                raise KeyboardInterrupt
            return real_query(model, question, **kwargs)

        monkeypatch.setattr(pipeline, "query", interrupted)
        with pytest.raises(KeyboardInterrupt):
            pipeline.query_batch(small_model, QUESTIONS, max_workers=1)

    def test_query_batch_propagates_system_exit(
        self, pipeline, small_model, monkeypatch
    ):
        def exiting(model, question, **kwargs):
            raise SystemExit(2)

        monkeypatch.setattr(pipeline, "query", exiting)
        with pytest.raises(SystemExit):
            pipeline.query_batch(small_model, QUESTIONS, max_workers=2)

    def test_runner_aborts_on_keyboard_interrupt(
        self, pipeline, small_model, tmp_path, baseline
    ):
        config = JobConfig(
            max_workers=1,
            checkpoint_dir=str(tmp_path / "ckpt"),
            handle_signals=False,
        )

        def interrupted(index, question, certify, heartbeat):
            if index == 2:
                raise KeyboardInterrupt
            return pipeline.query(small_model, question, certify=certify)

        runner = JobRunner(pipeline, small_model, config, query_fn=interrupted)
        with pytest.raises(KeyboardInterrupt):
            runner.run(QUESTIONS)

        # Committed work survived the interrupt; resume finishes the rest
        # byte-identically.
        recovery = read_journal(tmp_path / "ckpt" / JOURNAL_NAME)
        assert sorted(recovery.completed) == [0, 1]
        result = JobRunner(pipeline, small_model, config).resume()
        assert [_trace(o) for o in result.outcomes] == baseline


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------


class TestGracefulDrain:
    def test_drain_checkpoints_partial_and_resumes(
        self, pipeline, small_model, tmp_path, baseline
    ):
        config = JobConfig(
            max_workers=1,
            checkpoint_dir=str(tmp_path / "ckpt"),
            handle_signals=False,
        )
        runner = JobRunner(pipeline, small_model, config)

        def drain_after_first(index, question, certify, heartbeat):
            if index == 0:
                runner.request_drain()  # the signal handler's code path
            else:
                # Any later query the worker already picked up holds until
                # the drain lands, so the still-queued tail is determin-
                # istically dropped (in-flight queries finish; queued ones
                # stay pending for resume).
                deadline = time.monotonic() + 10.0
                while not runner._drain_applied and time.monotonic() < deadline:
                    time.sleep(0.002)
            return pipeline.query(small_model, question, certify=certify)

        runner._query_fn = drain_after_first
        result = runner.run(QUESTIONS)
        assert result.aborted
        assert result.outcomes[0] is not None
        assert result.pending  # something was left for resume
        assert set(result.pending) >= {2, 3}  # the never-started tail
        assert result.metrics.jobs_aborted == 1
        assert "ABORTED" in result.summary()

        resumed = JobRunner(pipeline, small_model, config).resume()
        assert not resumed.aborted
        assert resumed.pending == []
        assert [_trace(o) for o in resumed.outcomes] == baseline

    def test_completed_run_is_not_aborted(self, pipeline, small_model):
        result = JobRunner(
            pipeline, small_model, JobConfig(max_workers=2)
        ).run(QUESTIONS)
        assert not result.aborted
        assert result.metrics.jobs_aborted == 0


# ---------------------------------------------------------------------------
# Per-query timeout composition (satellite: --timeout)
# ---------------------------------------------------------------------------


class TestQueryTimeout:
    def _captured_budget(self, pipeline, small_model, monkeypatch, timeout):
        captured = {}
        real_query = pipeline.query

        def capture(model, question, budget=None, **kwargs):
            captured["budget"] = budget
            return real_query(model, question, budget=budget, **kwargs)

        monkeypatch.setattr(pipeline, "query", capture)
        runner = JobRunner(
            pipeline,
            small_model,
            JobConfig(max_workers=1, query_timeout=timeout),
        )
        runner.run(QUESTIONS[:1])
        return captured["budget"]

    def test_tightens_solver_deadline(self, pipeline, small_model, monkeypatch):
        base = pipeline.config.solver_budget
        budget = self._captured_budget(pipeline, small_model, monkeypatch, 1.5)
        assert budget.timeout_seconds == 1.5
        assert budget.max_conflicts == base.max_conflicts  # only time changes

    def test_never_loosens_solver_deadline(
        self, pipeline, small_model, monkeypatch
    ):
        base = pipeline.config.solver_budget
        budget = self._captured_budget(
            pipeline, small_model, monkeypatch, base.timeout_seconds + 100.0
        )
        assert budget.timeout_seconds == base.timeout_seconds

    def test_default_leaves_budget_untouched(
        self, pipeline, small_model, monkeypatch
    ):
        budget = self._captured_budget(pipeline, small_model, monkeypatch, None)
        assert budget is None  # pipeline default budget applies


class TestJobConfigValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            JobConfig(max_pending=0)
        with pytest.raises(ValueError):
            JobConfig(shed_above=0)
        with pytest.raises(ValueError, match="shed_above"):
            JobConfig(max_pending=4, shed_above=5)
        with pytest.raises(ValueError):
            JobConfig(stall_after=0.0)
        with pytest.raises(ValueError):
            JobConfig(query_timeout=-1.0)
        with pytest.raises(ValueError):
            JobConfig(max_workers=0)

    def test_pipeline_config_carries_job_config(self, pipeline, small_model):
        from repro import PipelineConfig

        config = PipelineConfig(jobs=JobConfig(max_workers=1))
        assert config.jobs.max_workers == 1
