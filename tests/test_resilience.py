"""Unit tests for the LLM resilience boundary.

Covers the retry policy/wrapper, the circuit breaker automaton, the
deterministic fault injector they are tested against, and the cache
robustness satellites (corrupt persisted caches, atomic flush).
"""

from __future__ import annotations

import json

import pytest

from repro import PolicyPipeline
from repro.errors import (
    CassetteError,
    CircuitOpenError,
    InjectedFaultError,
    LLMError,
    PermanentHTTPError,
    RateLimitError,
)
from repro.llm.client import CachedLLM, UsageStats, prompt_fingerprint
from repro.llm.simulated import SimulatedLLM
from repro.resilience import CircuitBreaker, RetryingLLM, RetryPolicy
from repro.resilience.faults import FaultInjectingLLM


class EchoLLM:
    """Backend that always succeeds, counting its calls."""

    def __init__(self) -> None:
        self.calls = 0

    def complete(self, prompt: str) -> str:
        self.calls += 1
        return f"echo:{prompt}"


class FailingLLM:
    """Backend that fails its first ``failures`` calls, then succeeds."""

    def __init__(self, failures: int, exc: type[BaseException] = LLMError) -> None:
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def complete(self, prompt: str) -> str:
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"transient failure {self.calls}")
        return f"ok:{prompt}"


class TestRetryPolicy:
    def test_delay_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            max_retries=4,
            base_delay_seconds=0.5,
            backoff_multiplier=2.0,
            max_delay_seconds=2.0,
        )
        assert policy.delay_schedule() == (0.5, 1.0, 2.0, 2.0)
        assert policy.delay_schedule() == policy.delay_schedule()

    def test_zero_retries_means_empty_schedule(self):
        assert RetryPolicy(max_retries=0).delay_schedule() == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_seconds=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_circuit_open_is_never_retryable(self):
        policy = RetryPolicy()
        assert policy.is_retryable(LLMError("x"))
        assert policy.is_retryable(TimeoutError())
        assert not policy.is_retryable(CircuitOpenError("open"))
        assert not policy.is_retryable(ValueError("not transient"))

    def test_permanent_provider_errors_are_never_retryable(self):
        # PermanentHTTPError and CassetteError subclass LLMError (which is
        # retryable by default) but retrying a 401 or a cassette miss can
        # never succeed.
        policy = RetryPolicy()
        assert not policy.is_retryable(PermanentHTTPError("401", status=401))
        assert not policy.is_retryable(CassetteError("miss"))
        assert policy.is_retryable(RateLimitError("429"))


class TestRetryAfterHonoring:
    """Server-advised backoff: sleep min(max(schedule, hint), max_delay)."""

    def test_hint_below_or_equal_schedule_is_ignored(self):
        policy = RetryPolicy(base_delay_seconds=0.5, max_delay_seconds=2.0)
        exc = RateLimitError("429", retry_after=0.1)
        assert policy.retry_delay(0.5, exc) == (0.5, False)
        exc = RateLimitError("429", retry_after=0.5)
        assert policy.retry_delay(0.5, exc) == (0.5, False)

    def test_hint_above_schedule_is_honored(self):
        policy = RetryPolicy(max_delay_seconds=2.0)
        exc = RateLimitError("429", retry_after=1.5)
        assert policy.retry_delay(0.5, exc) == (1.5, True)

    def test_hint_is_capped_at_max_delay(self):
        policy = RetryPolicy(max_delay_seconds=2.0)
        exc = RateLimitError("429", retry_after=60.0)
        assert policy.retry_delay(0.5, exc) == (2.0, True)

    def test_exceptions_without_hints_use_the_schedule(self):
        policy = RetryPolicy()
        assert policy.retry_delay(0.5, LLMError("x")) == (0.5, False)
        assert policy.retry_delay(0.5, RateLimitError("429")) == (0.5, False)

    def test_retrying_llm_sleeps_the_hint_and_counts_it(self):
        class RateLimitedLLM:
            def __init__(self):
                self.calls = 0

            def complete(self, prompt):
                self.calls += 1
                if self.calls == 1:
                    raise RateLimitError("slow down", retry_after=1.5)
                return f"ok:{prompt}"

        slept: list[float] = []
        llm = RetryingLLM(
            RateLimitedLLM(),
            RetryPolicy(max_retries=2, max_delay_seconds=2.0),
            sleep=slept.append,
        )
        assert llm.complete("p") == "ok:p"
        assert slept == [1.5]  # the hint, not the 0.05s schedule step
        assert llm.stats.retries == 1
        assert llm.stats.retry_after_honored == 1

    def test_unhinted_retries_do_not_count_as_honored(self):
        inner = FailingLLM(failures=1)
        llm = RetryingLLM(inner, RetryPolicy(max_retries=1), sleep=lambda _: None)
        assert llm.complete("p") == "ok:p"
        assert llm.stats.retries == 1
        assert llm.stats.retry_after_honored == 0


class TestRetryingLLM:
    def test_recovers_within_budget(self):
        inner = FailingLLM(failures=2)
        slept: list[float] = []
        llm = RetryingLLM(
            inner, RetryPolicy(max_retries=2), sleep=slept.append
        )
        assert llm.complete("p") == "ok:p"
        assert inner.calls == 3
        assert llm.stats.retries == 2
        assert llm.stats.retry_giveups == 0
        assert slept == list(RetryPolicy(max_retries=2).delay_schedule())

    def test_gives_up_after_budget(self):
        inner = FailingLLM(failures=10)
        llm = RetryingLLM(inner, RetryPolicy(max_retries=2), sleep=lambda _: None)
        with pytest.raises(LLMError):
            llm.complete("p")
        assert inner.calls == 3
        assert llm.stats.retries == 2
        assert llm.stats.retry_giveups == 1

    def test_non_retryable_raises_immediately(self):
        inner = FailingLLM(failures=10, exc=ValueError)
        llm = RetryingLLM(inner, RetryPolicy(max_retries=3), sleep=lambda _: None)
        with pytest.raises(ValueError):
            llm.complete("p")
        assert inner.calls == 1
        assert llm.stats.retries == 0


class TestCircuitBreaker:
    def test_opens_after_threshold_and_short_circuits(self):
        inner = FailingLLM(failures=100)
        breaker = CircuitBreaker(inner, failure_threshold=3, cooldown_calls=2)
        for _ in range(3):
            with pytest.raises(LLMError):
                breaker.complete("p")
        assert breaker.state == "open"
        assert breaker.stats.breaker_opens == 1
        # Cooldown: rejected without touching the backend.
        for _ in range(2):
            with pytest.raises(CircuitOpenError):
                breaker.complete("p")
        assert inner.calls == 3
        assert breaker.stats.breaker_short_circuits == 2

    def test_half_open_probe_success_closes(self):
        inner = FailingLLM(failures=3)
        breaker = CircuitBreaker(inner, failure_threshold=3, cooldown_calls=1)
        for _ in range(3):
            with pytest.raises(LLMError):
                breaker.complete("p")
        with pytest.raises(CircuitOpenError):
            breaker.complete("p")  # cooldown rejection
        # Next call is the half-open probe; the backend has recovered.
        assert breaker.complete("p") == "ok:p"
        assert breaker.state == "closed"
        assert breaker.complete("q") == "ok:q"

    def test_half_open_probe_failure_reopens(self):
        inner = FailingLLM(failures=100)
        breaker = CircuitBreaker(inner, failure_threshold=2, cooldown_calls=1)
        for _ in range(2):
            with pytest.raises(LLMError):
                breaker.complete("p")
        with pytest.raises(CircuitOpenError):
            breaker.complete("p")
        with pytest.raises(LLMError):
            breaker.complete("p")  # the probe itself fails
        assert breaker.state == "open"
        assert breaker.stats.breaker_opens == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(EchoLLM(), failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(EchoLLM(), cooldown_calls=-1)


class TestComposition:
    def test_cache_over_breaker_over_retry(self):
        """The documented stack: CachedLLM(CircuitBreaker(RetryingLLM(...)))."""
        stats = UsageStats()
        inner = FailingLLM(failures=1)
        stack = CachedLLM(
            CircuitBreaker(
                RetryingLLM(
                    inner,
                    RetryPolicy(max_retries=2),
                    stats=stats,
                    sleep=lambda _: None,
                ),
                failure_threshold=3,
                stats=stats,
            )
        )
        assert stack.complete("p") == "ok:p"  # rescued by one retry
        assert stats.retries == 1
        assert stats.breaker_opens == 0
        before = inner.calls
        assert stack.complete("p") == "ok:p"  # served by the cache
        assert inner.calls == before
        assert stack.stats.cache_hits == 1

    def test_retry_rescues_fault_injector(self):
        injector = FaultInjectingLLM(
            EchoLLM(), fail_substrings=("p",), failures_per_prompt=2
        )
        llm = RetryingLLM(
            injector, RetryPolicy(max_retries=2), sleep=lambda _: None
        )
        assert llm.complete("p") == "echo:p"
        assert injector.faults_injected == 2
        assert llm.stats.retries == 2


class TestFaultInjectingLLM:
    def test_designation_is_content_keyed_and_deterministic(self):
        a = FaultInjectingLLM(EchoLLM(), rate=0.3, seed=7)
        b = FaultInjectingLLM(EchoLLM(), rate=0.3, seed=7)
        prompts = [f"prompt number {i}" for i in range(200)]
        designated = [p for p in prompts if a.is_designated(p)]
        assert designated == [p for p in prompts if b.is_designated(p)]
        # ~30% of prompts, not all and not none.
        assert 0.15 < len(designated) / len(prompts) < 0.45
        different_seed = FaultInjectingLLM(EchoLLM(), rate=0.3, seed=8)
        assert designated != [p for p in prompts if different_seed.is_designated(p)]

    def test_rate_zero_never_faults(self):
        llm = FaultInjectingLLM(EchoLLM(), rate=0.0, seed=1)
        for i in range(50):
            assert llm.complete(f"p{i}") == f"echo:p{i}"
        assert llm.faults_injected == 0

    def test_substring_designation_always_fails(self):
        llm = FaultInjectingLLM(EchoLLM(), fail_substrings=("poison",))
        assert llm.complete("clean") == "echo:clean"
        for _ in range(3):
            with pytest.raises(InjectedFaultError):
                llm.complete("poison pill")
        assert llm.faults_injected == 3

    def test_finite_failure_count_then_recovers(self):
        llm = FaultInjectingLLM(
            EchoLLM(), fail_substrings=("x",), failures_per_prompt=2
        )
        with pytest.raises(InjectedFaultError):
            llm.complete("x")
        with pytest.raises(InjectedFaultError):
            llm.complete("x")
        assert llm.complete("x") == "echo:x"

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultInjectingLLM(EchoLLM(), rate=1.5)


class TestPipelineClientInjection:
    def test_empty_cached_llm_is_not_discarded(self):
        """Regression: an empty CachedLLM is falsy (it has __len__), and a
        truthiness check in the pipeline constructor silently replaced
        injected clients with the default backend."""
        llm = CachedLLM(EchoLLM())
        assert len(llm) == 0
        pipeline = PolicyPipeline(llm=llm)
        assert pipeline.llm is llm
        assert pipeline.runner.client is llm


class TestCachePersistenceRobustness:
    def test_corrupt_cache_file_degrades_to_cold_start(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('{"truncated": "mid-wri', "utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable LLM cache"):
            llm = CachedLLM(EchoLLM(), cache_path=path)
        assert len(llm) == 0
        llm.complete("p")  # still fully functional
        assert len(llm) == 1

    def test_malformed_cache_shape_degrades_to_cold_start(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps(["not", "a", "mapping"]), "utf-8")
        with pytest.warns(RuntimeWarning, match="malformed LLM cache"):
            llm = CachedLLM(EchoLLM(), cache_path=path)
        assert len(llm) == 0
        path.write_text(json.dumps({"key": 42}), "utf-8")
        with pytest.warns(RuntimeWarning, match="malformed LLM cache"):
            assert len(CachedLLM(EchoLLM(), cache_path=path)) == 0

    def test_flush_is_atomic_and_round_trips(self, tmp_path):
        path = tmp_path / "nested" / "cache.json"
        llm = CachedLLM(EchoLLM(), cache_path=path)
        completion = llm.complete("some prompt")
        llm.flush()
        # No temp-file droppings next to the cache.
        assert [p.name for p in path.parent.iterdir()] == ["cache.json"]
        persisted = json.loads(path.read_text("utf-8"))
        assert persisted == {prompt_fingerprint("some prompt"): completion}
        reloaded = CachedLLM(EchoLLM(), cache_path=path)
        assert len(reloaded) == 1

    def test_flush_replaces_rather_than_truncates(self, tmp_path):
        path = tmp_path / "cache.json"
        llm = CachedLLM(EchoLLM(), cache_path=path)
        llm.complete("first")
        llm.flush()
        first = path.read_text("utf-8")
        llm.complete("second")
        llm.flush()
        second = path.read_text("utf-8")
        assert first != second
        assert len(json.loads(second)) == 2
