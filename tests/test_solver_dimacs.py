"""Unit tests for DIMACS CNF import/export."""

import random

import pytest

from repro.errors import SolverError
from repro.solver.dimacs import from_dimacs, solve_dimacs_file, to_dimacs
from repro.solver.literals import AtomPool
from repro.solver.result import SatResult
from repro.solver.sat import CDCLSolver


class TestExport:
    def test_basic_format(self):
        text = to_dimacs([(1, -2), (2, 3)])
        lines = text.strip().splitlines()
        assert lines[0] == "p cnf 3 2"
        assert lines[1] == "1 -2 0"
        assert lines[2] == "2 3 0"

    def test_pool_comments(self):
        pool = AtomPool()
        var = pool.variable_for("share(acme,email)")
        text = to_dimacs([(var,)], pool=pool)
        assert f"c var {var} = share(acme,email)" in text

    def test_explicit_num_vars(self):
        text = to_dimacs([(1,)], num_vars=10)
        assert text.splitlines()[0] == "p cnf 10 1"

    def test_empty_problem(self):
        assert to_dimacs([]).strip() == "p cnf 0 0"


class TestImport:
    def test_round_trip(self):
        clauses = [(1, -2), (2, 3), (-1, -3)]
        num_vars, parsed = from_dimacs(to_dimacs(clauses))
        assert num_vars == 3
        assert parsed == clauses

    def test_comments_ignored(self):
        text = "c a comment\np cnf 2 1\n1 2 0\n"
        _n, clauses = from_dimacs(text)
        assert clauses == [(1, 2)]

    def test_multiline_clause(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        _n, clauses = from_dimacs(text)
        assert clauses == [(1, 2, 3)]

    def test_missing_problem_line_rejected(self):
        with pytest.raises(SolverError):
            from_dimacs("1 2 0\n")

    def test_malformed_problem_line_rejected(self):
        with pytest.raises(SolverError):
            from_dimacs("p dnf 2 1\n1 0\n")

    def test_gross_count_mismatch_rejected(self):
        with pytest.raises(SolverError):
            from_dimacs("p cnf 2 50\n1 0\n")


class TestSolveFile:
    def test_sat_file(self, tmp_path):
        path = tmp_path / "sat.cnf"
        path.write_text(to_dimacs([(1, 2), (-1, 2)]))
        verdict, model = solve_dimacs_file(path)
        assert verdict == "sat"
        assert model[2] is True

    def test_unsat_file(self, tmp_path):
        path = tmp_path / "unsat.cnf"
        path.write_text(to_dimacs([(1,), (-1,)]))
        verdict, model = solve_dimacs_file(path)
        assert verdict == "unsat"
        assert model == {}

    def test_random_round_trip_preserves_verdict(self, tmp_path):
        rng = random.Random(5)
        for trial in range(30):
            n = rng.randint(2, 8)
            clauses = [
                tuple(rng.choice([1, -1]) * rng.randint(1, n) for _ in range(3))
                for _ in range(rng.randint(2, 25))
            ]
            direct = CDCLSolver(n)
            for clause in clauses:
                direct.add_clause(clause)
            expected = direct.solve()

            path = tmp_path / f"t{trial}.cnf"
            path.write_text(to_dimacs(clauses, num_vars=n))
            verdict, _model = solve_dimacs_file(path)
            assert verdict == expected.value
