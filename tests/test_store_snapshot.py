"""Snapshot store: round-trip fidelity, verification, quarantine, recovery."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import PolicyPipeline
from repro.corpus.versions import make_version
from repro.errors import (
    SnapshotCorruptionError,
    SnapshotError,
    SnapshotNotFoundError,
)
from repro.store import SnapshotStore, model_artifacts, model_from_artifacts
from repro.store.audit import edge_key
from repro.store.snapshot import CURRENT_NAME, MANIFEST_NAME


def assert_models_equal(a, b) -> None:
    """Full structural equality of two policy models."""
    assert a.company == b.company
    assert a.revision == b.revision
    assert [s.segment_id for s in a.extraction.segments] == [
        s.segment_id for s in b.extraction.segments
    ]
    assert [p.as_dict() for p in a.extraction.practices] == [
        p.as_dict() for p in b.extraction.practices
    ]
    assert sorted(edge_key(e) for e in a.graph.edges()) == sorted(
        edge_key(e) for e in b.graph.edges()
    )
    assert set(a.data_taxonomy.as_edges()) == set(b.data_taxonomy.as_edges())
    assert set(a.entity_taxonomy.as_edges()) == set(b.entity_taxonomy.as_edges())
    assert a.node_vocabulary == b.node_vocabulary
    assert sorted(a.store.keys) == sorted(b.store.keys)
    assert np.allclose(
        a.store.get(a.store.keys[0]), b.store.get(a.store.keys[0])
    )


class TestSerializeRoundTrip:
    def test_artifacts_round_trip(self, small_model):
        restored = model_from_artifacts(model_artifacts(small_model))
        assert_models_equal(small_model, restored)

    def test_serialization_is_deterministic(self, small_model):
        assert model_artifacts(small_model) == model_artifacts(small_model)

    def test_corrupt_json_payload_raises(self, small_model):
        payloads = model_artifacts(small_model)
        payloads["graph.json"] = b"{not json"
        with pytest.raises(SnapshotCorruptionError):
            model_from_artifacts(payloads)

    def test_structurally_inconsistent_payload_raises(self, small_model):
        # A taxonomy cycle passes the hash check (hashes are recomputed
        # here) but must still fail the structural replay.
        payloads = model_artifacts(small_model)
        taxonomy = json.loads(payloads["data_taxonomy.json"])
        edges = taxonomy["edges"]
        parent, child = edges[0]
        edges.append([child, parent])
        payloads["data_taxonomy.json"] = json.dumps(taxonomy).encode()
        with pytest.raises(SnapshotCorruptionError):
            model_from_artifacts(payloads)


class TestSnapshotStore:
    def test_commit_load_round_trip(self, small_model, tmp_path):
        store = SnapshotStore(tmp_path)
        info = store.commit(small_model)
        assert info.snapshot_id == "snap-000001"
        result = store.load()
        assert result.clean
        assert result.snapshot_id == info.snapshot_id
        assert_models_equal(small_model, result.model)

    def test_round_trip_after_in_place_update(
        self, pipeline, small_policy_text, tmp_path
    ):
        model = pipeline.process(small_policy_text)
        version = make_version(small_policy_text, seed=0)
        pipeline.update(model, version.text, in_place=True)
        store = SnapshotStore(tmp_path)
        store.commit(model)
        assert_models_equal(model, store.load().model)

    def test_load_without_commit_raises(self, tmp_path):
        with pytest.raises(SnapshotNotFoundError):
            SnapshotStore(tmp_path).load()

    def test_verify_detects_bit_flip(self, small_model, tmp_path):
        store = SnapshotStore(tmp_path)
        info = store.commit(small_model)
        target = info.path / "practices.json"
        payload = bytearray(target.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        target.write_bytes(bytes(payload))
        failures = store.verify_snapshot(info.snapshot_id)
        assert any("practices.json" in f for f in failures)

    def test_corruption_quarantines_and_falls_back(self, small_model, tmp_path):
        store = SnapshotStore(tmp_path)
        first = store.commit(small_model)
        second = store.commit(small_model)
        (second.path / "graph.json").write_bytes(b"garbage")
        result = store.load()
        assert result.snapshot_id == first.snapshot_id
        assert result.fallback_from == second.snapshot_id
        assert len(result.quarantined) == 1
        report = result.quarantined[0]
        assert report.snapshot_id == second.snapshot_id
        assert any("graph.json" in f for f in report.failures)
        # The corrupt snapshot moved aside with a forensic report...
        quarantined = tmp_path / "quarantine" / second.snapshot_id
        assert quarantined.is_dir()
        assert json.loads((quarantined / "report.json").read_text())["failures"]
        # ...and CURRENT now points at the survivor.
        assert store.current_id() == first.snapshot_id
        assert_models_equal(small_model, result.model)

    def test_corruption_with_no_fallback_raises(self, small_model, tmp_path):
        store = SnapshotStore(tmp_path)
        info = store.commit(small_model)
        (info.path / MANIFEST_NAME).write_bytes(b"~")
        with pytest.raises(SnapshotCorruptionError) as excinfo:
            store.load()
        assert len(excinfo.value.reports) == 1
        assert excinfo.value.reports[0].snapshot_id == info.snapshot_id

    def test_quarantined_sequence_never_reissued(self, small_model, tmp_path):
        store = SnapshotStore(tmp_path)
        info = store.commit(small_model)
        (info.path / "meta.json").write_bytes(b"garbage")
        with pytest.raises(SnapshotCorruptionError):
            store.load()
        replacement = store.commit(small_model)
        assert replacement.snapshot_id != info.snapshot_id

    def test_current_pointing_at_missing_dir_falls_back(
        self, small_model, tmp_path
    ):
        store = SnapshotStore(tmp_path)
        info = store.commit(small_model)
        (tmp_path / CURRENT_NAME).write_text("snap-999999\n")
        result = store.load()
        assert result.snapshot_id == info.snapshot_id
        assert result.fallback_from == "snap-999999"
        assert store.current_id() == info.snapshot_id

    def test_retention_prunes_oldest(self, small_model, tmp_path):
        store = SnapshotStore(tmp_path, keep_snapshots=2)
        for _ in range(4):
            store.commit(small_model)
        ids = store.snapshot_ids()
        assert len(ids) == 2
        assert store.current_id() == ids[-1] == "snap-000004"

    def test_commit_update_clears_journal(self, small_model, tmp_path):
        store = SnapshotStore(tmp_path)
        store.commit(small_model)
        store.commit_update(small_model)
        assert not (tmp_path / "JOURNAL.json").exists()
        assert store.load().clean


class TestPipelinePersistence:
    def test_save_and_load_model(self, small_model, tmp_path):
        pipeline = PolicyPipeline()
        pipeline.save_model(small_model, tmp_path)
        loaded = pipeline.load_model(tmp_path)
        assert_models_equal(small_model, loaded)
        assert pipeline.metrics.snapshot_saves == 1
        assert pipeline.metrics.snapshot_loads == 1

    def test_load_model_rebuilds_from_policy_text(
        self, small_policy_text, tmp_path
    ):
        pipeline = PolicyPipeline()
        model = pipeline.load_model(tmp_path, policy_text=small_policy_text)
        assert model.extraction.num_practices > 0
        assert pipeline.metrics.snapshot_rebuilds == 1
        # The rebuild was re-committed: the next start is warm.
        again = pipeline.load_model(tmp_path)
        assert_models_equal(model, again)
        assert pipeline.metrics.snapshot_loads == 1

    def test_load_model_without_fallback_raises(self, tmp_path):
        with pytest.raises(SnapshotError):
            PolicyPipeline().load_model(tmp_path)

    def test_loaded_model_answers_queries_identically(
        self, pipeline, small_model, tmp_path
    ):
        pipeline.save_model(small_model, tmp_path)
        loaded = pipeline.load_model(tmp_path)
        for question in (
            "Acme collects the email address.",
            "Acme sells your contact information.",
            "Acme shares location information with advertisers.",
        ):
            cold = pipeline.query(small_model, question)
            warm = pipeline.query(loaded, question)
            assert cold.verdict == warm.verdict, question

    def test_save_artifacts_leaves_no_temp_files(self, small_model, tmp_path):
        PolicyPipeline().save_artifacts(small_model, tmp_path)
        names = {p.name for p in tmp_path.iterdir()}
        assert "segments.json" in names and "embeddings.npz" in names
        assert not any(n.startswith(".") or ".tmp" in n for n in names)
        # Re-dumping over the same directory is safe and idempotent.
        PolicyPipeline().save_artifacts(small_model, tmp_path)
        assert {p.name for p in tmp_path.iterdir()} == names
