"""Release-hygiene tests: the documented public API actually exists.

Every name a README/docstring example uses must import from where the
documentation says it does, and every ``__all__`` entry must resolve.
"""

import importlib

import pytest

_PACKAGES = [
    "repro",
    "repro.nlp",
    "repro.llm",
    "repro.embeddings",
    "repro.fol",
    "repro.smtlib",
    "repro.solver",
    "repro.corpus",
    "repro.core",
    "repro.analysis",
    "repro.store",
    "repro.registry",
    "repro.server",
    "repro.providers",
]


class TestAllExportsResolve:
    @pytest.mark.parametrize("name", _PACKAGES)
    def test_dunder_all_resolves(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__"), f"{name} has no __all__"
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", _PACKAGES)
    def test_module_docstrings_present(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), name


class TestReadmeImports:
    def test_quickstart_imports(self):
        from repro import PolicyPipeline  # noqa: F401
        from repro.corpus import tiktak_policy  # noqa: F401

    def test_llm_seam(self):
        from repro.llm.client import LLMClient
        from repro.llm.simulated import SimulatedLLM

        assert isinstance(SimulatedLLM(), LLMClient)

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_cli_entry_point(self):
        from repro.cli import build_parser, main  # noqa: F401

        parser = build_parser()
        commands = {
            a.dest for a in parser._subparsers._group_actions for a in [a]
        }
        assert "command" in commands


class TestPublicDocstrings:
    @pytest.mark.parametrize(
        "module_name,attrs",
        [
            ("repro.core.pipeline", ("PolicyPipeline", "PolicyPipeline.process")),
            ("repro.core.pipeline", ("PolicyPipeline.query", "PolicyPipeline.update")),
            ("repro.solver.interface", ("Solver", "Solver.check_sat_assuming")),
            ("repro.smtlib.printer", ("compile_validity_script",)),
            ("repro.core.hierarchy", ("chain_of_layer", "extend_taxonomy")),
            ("repro.analysis.contradictions", ("find_contradictions",)),
        ],
    )
    def test_key_apis_documented(self, module_name, attrs):
        module = importlib.import_module(module_name)
        for dotted in attrs:
            obj = module
            for part in dotted.split("."):
                obj = getattr(obj, part)
            assert obj.__doc__ and obj.__doc__.strip(), f"{module_name}.{dotted}"
