"""Differential fuzzing: the SMT substrate vs a brute-force reference.

Generates seeded random FOL formulas — ground and quantified, boolean and
EUF (equality over constants and uninterpreted function terms) — and
cross-checks the production solver's verdict against
:func:`repro.solver.modelcheck.brute_force_status`, which shares no code
with the CDCL/DPLL(T) stack: it enumerates every assignment of the
appearing atoms and filters by an independent congruence check.

Any disagreement is a soundness or completeness bug in one of the two
implementations; the suite requires **zero** disagreements over 600+
formulas.  A second pass re-runs a sample with certification enabled and
requires every certificate to pass (the certifier must not raise false
alarms on correct verdicts).

Marked ``fuzz``: the fast CI lane deselects it with ``-m "not fuzz"``.
"""

from __future__ import annotations

import random

import pytest

from repro.fol.formula import (
    And,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    PredicateSymbol,
)
from repro.fol.terms import Constant, FunctionSymbol, Sort, Variable
from repro.solver import CertificationConfig, SatResult, Solver
from repro.solver.modelcheck import brute_force_status, collect_atom_keys

pytestmark = pytest.mark.fuzz

S = Sort("S")
A = Constant("a", S)
B = Constant("b", S)
CONSTANTS = (A, B)
X = Variable("x", S)
P = PredicateSymbol("p", (S,))
EQ = PredicateSymbol("=", (S, S))
F = FunctionSymbol("f", (S,), S)
PROPS = tuple(PredicateSymbol(f"q{i}", ()) for i in range(3))

MAX_ATOMS = 8  # brute force enumerates 2^MAX_ATOMS assignments
FORMULAS_PER_SEED = 60
SEEDS = range(10)  # 10 x 60 = 600 formulas, fuzzer floor is 500


class FormulaGenerator:
    """Seeded random formula source; deterministic per seed."""

    def __init__(self, seed: int, *, euf: bool) -> None:
        self.rng = random.Random(seed)
        self.euf = euf

    def term(self, bound):
        choices = list(CONSTANTS) + list(bound)
        term = self.rng.choice(choices)
        if self.euf and self.rng.random() < 0.3:
            return F(term)
        return term

    def atom(self, bound) -> Formula:
        roll = self.rng.random()
        if self.euf and roll < 0.4:
            return EQ(self.term(bound), self.term(bound))
        if roll < 0.7:
            return P(self.term(bound))
        return self.rng.choice(PROPS)()

    def formula(self, depth: int, bound=()) -> Formula:
        if depth <= 0 or self.rng.random() < 0.3:
            return self.atom(bound)
        kind = self.rng.randrange(6)
        if kind == 0:
            return Not(self.formula(depth - 1, bound))
        if kind == 1:
            return And(
                tuple(
                    self.formula(depth - 1, bound)
                    for _ in range(self.rng.randint(2, 3))
                )
            )
        if kind == 2:
            return Or(
                tuple(
                    self.formula(depth - 1, bound)
                    for _ in range(self.rng.randint(2, 3))
                )
            )
        if kind == 3:
            return Implies(
                self.formula(depth - 1, bound), self.formula(depth - 1, bound)
            )
        if kind == 4:
            return Iff(
                self.formula(depth - 1, bound), self.formula(depth - 1, bound)
            )
        variable = Variable(f"x{len(bound)}", S)
        body = self.formula(depth - 1, bound + (variable,))
        cls = Forall if self.rng.random() < 0.5 else Exists
        return cls(variable, body)

    def case(self) -> list[Formula]:
        """A conjunction of 1-3 assertions, capped at MAX_ATOMS atoms."""
        domains = {S: CONSTANTS}
        while True:
            formulas = [
                self.formula(3) for _ in range(self.rng.randint(1, 3))
            ]
            keys: set[str] = set()
            for formula in formulas:
                keys.update(collect_atom_keys(formula, domains))
            if 0 < len(keys) <= MAX_ATOMS:
                return formulas


def solve(formulas, *, certify: bool = False):
    solver = Solver(
        certification=CertificationConfig() if certify else None
    )
    for constant in CONSTANTS:
        solver.declare_constant(constant)
    for formula in formulas:
        solver.assert_formula(formula)
    return solver.check_sat()


def reference_status(formulas) -> str:
    return brute_force_status(formulas, {S: CONSTANTS}, max_atoms=MAX_ATOMS)


class TestDifferentialFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_solver_agrees_with_brute_force(self, seed):
        generator = FormulaGenerator(seed, euf=seed % 2 == 1)
        disagreements = []
        for index in range(FORMULAS_PER_SEED):
            formulas = generator.case()
            result = solve(formulas)
            expected = reference_status(formulas)
            if result.status.value != expected:
                disagreements.append(
                    (index, expected, result.status.value, formulas)
                )
        assert disagreements == []

    @pytest.mark.parametrize("seed", [0, 1])
    def test_certification_never_false_alarms_on_fuzzed_formulas(self, seed):
        """Certified verdicts on random formulas: same answer as the
        uncertified run, and every certificate passes."""
        generator = FormulaGenerator(100 + seed, euf=True)
        for _ in range(25):
            formulas = generator.case()
            plain = solve(formulas)
            certified = solve(formulas, certify=True)
            assert certified.status is plain.status
            if certified.status is not SatResult.UNKNOWN:
                report = certified.certificate
                assert report is not None
                assert report.certified, report.failures

    def test_fuzzer_volume_meets_the_floor(self):
        assert len(SEEDS) * FORMULAS_PER_SEED >= 500

    def test_generator_is_deterministic(self):
        first = FormulaGenerator(7, euf=True)
        second = FormulaGenerator(7, euf=True)
        assert [first.case() for _ in range(5)] == [
            second.case() for _ in range(5)
        ]
