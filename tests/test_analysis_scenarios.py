"""Unit tests for scenario-based compliance testing."""

import json

import pytest

from repro.analysis.scenarios import (
    Expectation,
    Scenario,
    load_scenarios,
    run_scenarios,
)
from repro.cli import main
from repro.errors import ReproError


class TestExpectation:
    def test_parse_valid_values(self):
        assert Expectation.parse("valid") is Expectation.VALID
        assert Expectation.parse(" CONDITIONAL ") is Expectation.CONDITIONAL

    def test_parse_unknown_raises(self):
        with pytest.raises(ReproError):
            Expectation.parse("maybe")


class TestScenarioLoading:
    def test_from_dict(self):
        scenario = Scenario.from_dict(
            {"question": "Acme collects the name.", "expectation": "valid"}
        )
        assert scenario.expectation is Expectation.VALID

    def test_default_expectation_is_any(self):
        scenario = Scenario.from_dict({"question": "whatever"})
        assert scenario.expectation is Expectation.ANY

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(
            json.dumps(
                [
                    {"question": "Acme collects the name.", "expectation": "valid"},
                    {"question": "Acme sells the name.", "expectation": "invalid"},
                ]
            )
        )
        scenarios = load_scenarios(path)
        assert len(scenarios) == 2

    def test_non_list_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ReproError):
            load_scenarios(path)


class TestRunScenarios:
    def _suite(self):
        return [
            Scenario("Acme collects the name.", Expectation.VALID),
            Scenario(
                "Acme shares the location information with advertisers.",
                Expectation.CONDITIONAL,
            ),
            Scenario(
                "Acme sells contact information to third parties.",
                Expectation.INVALID,
            ),
            Scenario("Acme collects the email address.", Expectation.ANY),
        ]

    def test_all_pass_on_compliant_policy(self, pipeline, small_model):
        report = run_scenarios(pipeline, small_model, self._suite())
        assert report.all_passed, report.render()
        assert report.passed == report.total == 4

    def test_wrong_expectation_fails(self, pipeline, small_model):
        suite = [Scenario("Acme collects the name.", Expectation.INVALID)]
        report = run_scenarios(pipeline, small_model, suite)
        assert not report.all_passed
        assert report.failed[0].detail

    def test_conditional_expectation_rejects_unconditional(self, pipeline, small_model):
        suite = [Scenario("Acme collects the name.", Expectation.CONDITIONAL)]
        report = run_scenarios(pipeline, small_model, suite)
        assert not report.all_passed

    def test_render_marks_pass_fail(self, pipeline, small_model):
        suite = [
            Scenario("Acme collects the name.", Expectation.VALID),
            Scenario("Acme collects the name.", Expectation.INVALID),
        ]
        text = run_scenarios(pipeline, small_model, suite).render()
        assert "[PASS]" in text and "[FAIL]" in text
        assert text.startswith("scenario suite: 1/2 passed")


class TestScenariosCLI:
    def test_cli_exit_codes(self, tmp_path, small_policy_text, capsys):
        policy = tmp_path / "policy.txt"
        policy.write_text(small_policy_text, "utf-8")
        suite = tmp_path / "suite.json"
        suite.write_text(
            json.dumps(
                [{"question": "Acme collects the name.", "expectation": "valid"}]
            )
        )
        assert main(["scenarios", str(policy), str(suite)]) == 0
        assert "1/1 passed" in capsys.readouterr().out

        failing = tmp_path / "failing.json"
        failing.write_text(
            json.dumps(
                [{"question": "Acme collects the name.", "expectation": "invalid"}]
            )
        )
        assert main(["scenarios", str(policy), str(failing)]) == 1
