"""Integration tests on the bundled TikTak/MetaBook corpora.

These pin the paper-level behaviours: multi-edge decomposition of the
showcase statements (Tables 2 and 3), extraction-statistics shape
(Table 1), incremental updates, and end-to-end query verdicts.
"""

import pytest

from repro import Verdict
from repro.corpus import (
    METABOOK_SHOWCASE,
    POLICY_QUERIES,
    TIKTAK_SHOWCASE,
    metabook_policy,
    tiktak_policy,
)


class TestShowcaseDecomposition:
    @pytest.mark.parametrize("statement,min_edges", TIKTAK_SHOWCASE)
    def test_tiktak_statements(self, runner, statement, min_edges):
        practices = runner.extract_parameters(statement, "TikTak")
        assert len(practices) >= min_edges

    @pytest.mark.parametrize("statement,min_edges", METABOOK_SHOWCASE)
    def test_metabook_statements(self, runner, statement, min_edges):
        practices = runner.extract_parameters(statement, "MetaBook")
        assert len(practices) >= min_edges

    def test_profile_enumeration_yields_ten_distinct_types(self, runner):
        statement = TIKTAK_SHOWCASE[1][0]
        practices = runner.extract_parameters(statement, "TikTak")
        types = {p.data_type for p in practices}
        for expected in (
            "name",
            "age",
            "username",
            "password",
            "language",
            "email",
            "phone number",
            "social media account information",
            "profile image",
        ):
            assert expected in types

    def test_contact_finding_condition_preserved(self, runner):
        statement = TIKTAK_SHOWCASE[2][0]
        practices = runner.extract_parameters(statement, "TikTak")
        conditional = [p for p in practices if p.condition]
        assert conditional
        assert all(
            "choose to find other users" in p.condition for p in conditional
        )

    def test_payments_multi_action(self, runner):
        statement = METABOOK_SHOWCASE[2][0]
        practices = runner.extract_parameters(statement, "MetaBook")
        actions = {p.action for p in practices if p.sender == "MetaBook"}
        assert {"process", "access", "preserve"} <= actions


class TestTable1Shape:
    def test_tiktak_statistics(self, tiktak_model):
        stats = tiktak_model.statistics
        assert stats.total_nodes > 150
        assert stats.total_edges > 800
        assert stats.entities >= 15
        assert stats.data_types >= 60
        assert stats.total_edges > stats.total_nodes  # edges dominate nodes

    def test_metabook_larger_than_tiktak(self, pipeline, tiktak_model):
        mb = pipeline.process(metabook_policy().text)
        tk_stats = tiktak_model.statistics
        mb_stats = mb.statistics
        # The paper's Table 1 shape: Meta roughly 3x TikTok on every metric.
        assert mb_stats.total_nodes > 1.5 * tk_stats.total_nodes
        assert mb_stats.total_edges > 2.0 * tk_stats.total_edges
        assert mb_stats.data_types > 1.3 * tk_stats.data_types


class TestQuerySuite:
    @pytest.mark.parametrize(
        "query", [q for q in POLICY_QUERIES if q.policy == "tiktak"],
        ids=lambda q: q.text[:40],
    )
    def test_tiktak_queries_match_expectation(self, pipeline, tiktak_model, query):
        outcome = pipeline.query(tiktak_model, query.text)
        self._check(outcome, query.expectation)

    @staticmethod
    def _check(outcome, expectation):
        if expectation == "valid":
            assert outcome.verdict is Verdict.VALID
        elif expectation == "invalid":
            assert outcome.verdict is Verdict.INVALID
        elif expectation == "conditional":
            assert outcome.verdict is Verdict.INVALID
            assert outcome.verification.conditionally_valid is True
        else:
            assert outcome.verdict in (Verdict.VALID, Verdict.INVALID, Verdict.UNKNOWN)

    def test_embedding_match_bridges_email_variants(self, pipeline, tiktak_model):
        outcome = pipeline.query(tiktak_model, "TikTak collects email address.")
        translation = outcome.translations.get("email address")
        assert translation is not None
        # "email address" resolves into policy vocabulary ("email" node).
        assert translation.verified


class TestIncrementalUpdates:
    def test_small_edit_reuses_most_segments(self, pipeline, tiktak_model):
        text = tiktak_policy().text + "\nWe collect your shoe size.\n"
        _model, stats = pipeline.update(tiktak_model, text)
        assert stats.segments_reextracted == 1
        assert stats.reuse_fraction > 0.99

    def test_update_keeps_statistics_consistent(self, pipeline, tiktak_model):
        new_model, _stats = pipeline.update(tiktak_model, tiktak_policy().text)
        assert (
            new_model.statistics.total_edges
            == tiktak_model.statistics.total_edges
        )


class TestVagueTermsSurface:
    def test_vague_predicates_in_extraction(self, tiktak_model):
        vague = [
            p for p in tiktak_model.extraction.practices if p.has_vague_condition
        ]
        assert len(vague) > 50
        names = {name for p in vague for _phrase, name in p.vague_terms}
        assert "required_by_law" in names
        assert "legitimate_business_purpose" in names

    def test_conditional_query_reports_dependency(self, pipeline, tiktak_model):
        outcome = pipeline.query(
            tiktak_model, "TikTak shares biometric identifiers with data brokers."
        )
        assert outcome.verification.depends_on
