"""Unit tests for the user-rights audit."""

import pytest

from repro.analysis.rights import RIGHT_ACTIONS, rights_report
from repro.core.graphs import PolicyGraph
from repro.core.parameters import annotate
from repro.llm.tasks import ExtractedParameters


def _practice(sender, action, data_type, condition=None, permission=True, seg="s1"):
    return annotate(
        ExtractedParameters(
            sender=sender,
            receiver=None,
            subject="user",
            data_type=data_type,
            action=action,
            condition=condition,
            permission=permission,
        ),
        segment_id=seg,
        segment_index=0,
    )


def _build(practices):
    graph = PolicyGraph("Acme")
    graph.add_practices(practices)
    return practices, graph


class TestRightGrants:
    def test_user_deletion_grant(self):
        practices, graph = _build(
            [_practice("user", "delete", "email")]
        )
        report = rights_report(practices, graph)
        assert "deletion" in report.rights_present
        assert report.grants[0].data_type == "email"

    def test_company_deletion_via_request_channel(self):
        practices, graph = _build(
            [_practice("acme", "delete", "email", condition="if you request deletion")]
        )
        report = rights_report(practices, graph)
        assert "deletion" in report.rights_present

    def test_company_deletion_without_channel_not_a_grant(self):
        # "We delete logs after 90 days" is retention policy, not a right.
        practices, graph = _build(
            [_practice("acme", "delete", "logs", condition="after 90 days")]
        )
        report = rights_report(practices, graph)
        assert "deletion" not in report.rights_present

    def test_denied_practice_not_a_grant(self):
        practices, graph = _build(
            [_practice("user", "delete", "email", permission=False)]
        )
        report = rights_report(practices, graph)
        assert not report.grants

    def test_absent_rights_listed(self):
        practices, graph = _build([_practice("user", "delete", "email")])
        report = rights_report(practices, graph)
        assert "portability" in report.rights_absent
        assert report.rights_present | report.rights_absent == set(RIGHT_ACTIONS)


class TestDeletionCoverage:
    def test_uncovered_collection_flagged(self):
        practices, graph = _build(
            [
                _practice("acme", "collect", "email"),
                _practice("acme", "collect", "gps location", seg="s2"),
                _practice("user", "delete", "email", seg="s3"),
            ]
        )
        report = rights_report(practices, graph)
        assert "gps location" in report.collected_without_deletion
        assert "email" not in report.collected_without_deletion

    def test_blanket_deletion_covers_everything(self):
        practices, graph = _build(
            [
                _practice("acme", "collect", "email"),
                _practice("acme", "collect", "gps location", seg="s2"),
                _practice("user", "delete", "personal information", seg="s3"),
            ]
        )
        report = rights_report(practices, graph)
        assert not report.collected_without_deletion

    def test_hierarchy_relative_counts(self):
        from repro.core.hierarchy import Taxonomy

        taxonomy = Taxonomy(root="data")
        taxonomy.add("contact information", "data")
        taxonomy.add("email", "contact information")
        graph = PolicyGraph("Acme", data_taxonomy=taxonomy)
        practices = [
            _practice("acme", "collect", "email"),
            _practice("user", "delete", "contact information", seg="s2"),
        ]
        graph.add_practices(practices)
        report = rights_report(practices, graph)
        assert "email" not in report.collected_without_deletion


class TestRendering:
    def test_render_sections(self):
        practices, graph = _build(
            [
                _practice("acme", "collect", "gps location"),
                _practice("user", "delete", "email", seg="s2"),
            ]
        )
        text = rights_report(practices, graph).render()
        assert "user rights audit:" in text
        assert "deletion" in text
        assert "no stated deletion path" in text

    def test_integration_on_bundled_policy(self, tiktak_model):
        report = rights_report(
            tiktak_model.extraction.practices, tiktak_model.graph
        )
        # The generated rights section grants at least deletion + objection.
        assert "deletion" in report.rights_present
        assert report.grants
