"""Latency reservoir suite: determinism, quantile bounds, worker merges.

The :class:`~repro.core.metrics.LatencyReservoir` is the serving
daemon's SLO instrument, so its contract is checked the way the LRU's
is — against a pure-Python reference.  The sketch must be a function of
the sample *multiset* alone (arrival order, thread interleaving, and
merge order must all be invisible), quantiles must stay within the
documented one-bucket relative error of the exact rank statistic, and a
merge of per-worker reservoirs must be bucket-for-bucket identical to
one central reservoir that saw every sample.
"""

from __future__ import annotations

import math
import random
import threading

import pytest

from repro import LatencyReservoir, PipelineMetrics

# One bucket spans a factor of 2**(1/PER_OCTAVE); interpolation keeps
# any quantile within one bucket width of the exact rank statistic.
BUCKET_RATIO = 2 ** (1 / LatencyReservoir.PER_OCTAVE)


def exact_quantile(samples: list[float], q: float) -> float:
    """The rank statistic the sketch approximates: value at ceil(q*n)."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def snapshot(reservoir: LatencyReservoir) -> tuple:
    return (
        tuple(reservoir._buckets),
        reservoir.count,
        round(reservoir.sum, 12),
        reservoir.min,
        reservoir.max,
    )


class TestRecording:
    def test_exact_count_sum_min_max(self):
        r = LatencyReservoir()
        for value in (0.004, 0.100, 0.0015, 2.5):
            r.record(value)
        assert r.count == 4
        assert r.sum == pytest.approx(0.004 + 0.100 + 0.0015 + 2.5)
        assert r.min == 0.0015
        assert r.max == 2.5

    def test_empty_sketch_reports_zero(self):
        r = LatencyReservoir()
        assert r.count == 0
        assert r.p50 == 0.0 and r.p95 == 0.0 and r.p99 == 0.0
        assert r.mean == 0.0
        d = r.as_dict()
        assert d["count"] == 0 and d["min_seconds"] == 0.0

    def test_negative_and_subfloor_samples_clamp(self):
        r = LatencyReservoir()
        r.record(-1.0)  # clock skew must not corrupt the sketch
        r.record(1e-9)
        assert r.count == 2
        assert r.min == 0.0
        assert r._buckets[0] == 2

    def test_quantile_domain_validated(self):
        r = LatencyReservoir()
        with pytest.raises(ValueError):
            r.quantile(1.5)
        with pytest.raises(ValueError):
            r.quantile(-0.01)

    def test_bounded_state_independent_of_sample_count(self):
        r = LatencyReservoir()
        for i in range(10_000):
            r.record((i % 97 + 1) * 1e-4)
        assert len(r._buckets) == LatencyReservoir.BUCKETS

    def test_huge_sample_lands_in_last_bucket(self):
        r = LatencyReservoir()
        r.record(1e30)  # beyond the 12.7-day ceiling
        assert r._buckets[-1] == 1
        assert r.p99 == pytest.approx(1e30)  # clamped to the exact max


class TestDeterminism:
    def test_state_is_a_function_of_the_multiset(self):
        rng = random.Random(7)
        samples = [rng.uniform(1e-5, 5.0) for _ in range(500)]
        a, b = LatencyReservoir(), LatencyReservoir()
        for s in samples:
            a.record(s)
        for s in sorted(samples, reverse=True):
            b.record(s)
        assert snapshot(a)[0] == snapshot(b)[0]
        assert a.as_dict() == b.as_dict()

    def test_concurrent_recording_matches_serial(self):
        rng = random.Random(11)
        samples = [rng.uniform(1e-5, 1.0) for _ in range(400)]
        serial = LatencyReservoir()
        for s in samples:
            serial.record(s)

        shared = LatencyReservoir()
        chunks = [samples[i::8] for i in range(8)]
        threads = [
            threading.Thread(target=lambda c=c: [shared.record(s) for s in c])
            for c in chunks
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert snapshot(shared)[0] == snapshot(serial)[0]
        assert shared.count == serial.count


class TestQuantiles:
    def test_single_sample_all_quantiles_exact(self):
        r = LatencyReservoir()
        r.record(0.25)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert r.quantile(q) == pytest.approx(0.25)

    def test_quantiles_clamped_to_observed_extremes(self):
        r = LatencyReservoir()
        for s in (0.010, 0.011, 0.012):
            r.record(s)
        assert r.quantile(0.0) >= r.min
        assert r.quantile(1.0) <= r.max

    @pytest.mark.parametrize("q", [0.50, 0.90, 0.95, 0.99])
    def test_relative_error_bounded_by_bucket_width(self, q):
        rng = random.Random(q)
        samples = [rng.lognormvariate(-6.0, 1.5) for _ in range(2000)]
        r = LatencyReservoir()
        for s in samples:
            r.record(s)
        truth = exact_quantile(samples, q)
        approx = r.quantile(q)
        assert truth / BUCKET_RATIO <= approx <= truth * BUCKET_RATIO, (
            f"q={q}: sketch {approx:.6f} vs exact {truth:.6f} "
            f"exceeds one-bucket error"
        )

    def test_monotone_in_q(self):
        rng = random.Random(3)
        r = LatencyReservoir()
        for _ in range(300):
            r.record(rng.uniform(1e-4, 2.0))
        values = [r.quantile(q / 100) for q in range(0, 101, 5)]
        assert values == sorted(values)


class TestMerge:
    def test_merge_equals_central_reservoir(self):
        rng = random.Random(19)
        samples = [rng.uniform(1e-5, 3.0) for _ in range(600)]
        central = LatencyReservoir()
        for s in samples:
            central.record(s)

        workers = [LatencyReservoir() for _ in range(5)]
        for i, s in enumerate(samples):
            workers[i % 5].record(s)
        merged = LatencyReservoir()
        for w in workers:
            merged.merge(w)
        assert snapshot(merged) == snapshot(central)
        assert merged.as_dict() == central.as_dict()

    def test_merge_order_independent(self):
        rng = random.Random(23)
        workers = []
        for seed in range(4):
            w = LatencyReservoir()
            for _ in range(100):
                w.record(rng.uniform(1e-5, 1.0))
            workers.append(w)
        forward, backward = LatencyReservoir(), LatencyReservoir()
        for w in workers:
            forward.merge(w)
        for w in reversed(workers):
            backward.merge(w)
        assert snapshot(forward) == snapshot(backward)

    def test_merge_with_empty_is_identity(self):
        r = LatencyReservoir()
        r.record(0.02)
        before = snapshot(r)
        r.merge(LatencyReservoir())
        assert snapshot(r) == before

    def test_merge_does_not_mutate_source(self):
        a, b = LatencyReservoir(), LatencyReservoir()
        b.record(0.5)
        before = snapshot(b)
        a.merge(b)
        assert snapshot(b) == before


class TestPipelineMetricsIntegration:
    def test_latency_field_defaults_to_none_and_stays_out_of_as_dict(self):
        metrics = PipelineMetrics(queries=0)
        assert metrics.latency is None
        assert "latency" not in metrics.as_dict()

    def test_as_dict_includes_reservoir_when_present(self):
        metrics = PipelineMetrics(queries=0, latency=LatencyReservoir())
        metrics.latency.record(0.05)
        d = metrics.as_dict()
        assert d["latency"]["count"] == 1

    def test_metrics_merge_folds_reservoirs_without_aliasing(self):
        a = PipelineMetrics(queries=0, latency=LatencyReservoir())
        b = PipelineMetrics(queries=0, latency=LatencyReservoir())
        a.latency.record(0.010)
        b.latency.record(0.030)
        merged = PipelineMetrics(queries=0)
        merged.merge(a)
        merged.merge(b)
        assert merged.latency is not None
        assert merged.latency is not a.latency and merged.latency is not b.latency
        assert merged.latency.count == 2
        assert merged.latency.min == pytest.approx(0.010)
        assert merged.latency.max == pytest.approx(0.030)
        # Sources untouched by the fold.
        assert a.latency.count == 1 and b.latency.count == 1

    def test_queue_depth_is_max_merged_not_summed(self):
        a = PipelineMetrics(queries=0, queue_depth=3)
        b = PipelineMetrics(queries=0, queue_depth=5)
        merged = PipelineMetrics(queries=0)
        merged.merge(a)
        merged.merge(b)
        assert merged.queue_depth == 5

    def test_render_mentions_latency_when_present(self):
        metrics = PipelineMetrics(queries=0, latency=LatencyReservoir())
        metrics.latency.record(0.02)
        metrics.server_requests = 1
        assert "p50" in metrics.render()
