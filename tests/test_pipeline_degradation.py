"""Degradation-ladder and fault-isolation tests for the query pipeline.

Covers the solver UNKNOWN -> QueryOutcome path end-to-end, the
escalate/decompose ladder, per-query budget overrides, strict translation,
and the conversion of raising queries into structured ErrorOutcome records
inside ``query_batch``.
"""

from __future__ import annotations

import pytest

from repro import PipelineConfig, PolicyPipeline, Verdict
from repro.core.encode import encode_query
from repro.core.pipeline import ErrorOutcome
from repro.core.subgraph import Subgraph, component_for_terms, split_components
from repro.core.verify import verify_encoded
from repro.errors import TranslationError
from repro.resilience import BudgetLadder, execute_ladder, is_budget_limited
from repro.resilience.faults import (
    STARVED_BUDGET,
    BudgetStarvingPipeline,
    FaultInjectingLLM,
)
from repro.llm.client import CachedLLM
from repro.llm.simulated import SimulatedLLM
from repro.solver.interface import SolverBudget

QUESTION = "Does Acme collect my email address?"


def _full_graph_subgraph(model) -> Subgraph:
    """All practice edges plus the hierarchy links between their terms."""
    sub = Subgraph()
    sub.edges = list(model.graph.edges())
    for edge in sub.edges:
        sub.data_terms.add(edge.target)
        sub.entity_terms.add(edge.source)
        if edge.receiver:
            sub.entity_terms.add(edge.receiver)
    taxonomy = model.graph.data_taxonomy
    for child in sorted(sub.data_terms):
        parent = taxonomy.parent(child)
        if parent and parent != taxonomy.root and parent in sub.data_terms:
            sub.hierarchy_edges.append((parent, child))
    return sub


class TestUnknownVerdictEndToEnd:
    """Solver budget exhaustion must surface as a structured UNKNOWN."""

    def test_starved_budget_yields_budget_unknown(self, pipeline, small_model):
        outcome = pipeline.query(small_model, QUESTION, budget=STARVED_BUDGET)
        assert outcome.verdict is Verdict.UNKNOWN
        reason = outcome.verification.solver_result.reason
        assert "budget exhausted" in reason or "timeout" in reason
        assert is_budget_limited(outcome.verification)
        # Without a ladder configured, no degradation is attempted and the
        # trace stays byte-identical to prior releases.
        assert outcome.degradation is None
        assert "degradation" not in outcome.as_dict()
        assert f"reason: {reason}" in outcome.summary()
        assert outcome.failed is False

    def test_budget_override_does_not_pollute_default_cache(
        self, pipeline, small_model
    ):
        starved = pipeline.query(small_model, QUESTION, budget=STARVED_BUDGET)
        assert starved.verdict is Verdict.UNKNOWN
        normal = pipeline.query(small_model, QUESTION)
        assert normal.verdict is not Verdict.UNKNOWN
        again = pipeline.query(small_model, QUESTION, budget=STARVED_BUDGET)
        assert again.verdict is Verdict.UNKNOWN


class TestBudgetLadder:
    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetLadder(multipliers=(1.0,))
        with pytest.raises(ValueError):
            BudgetLadder(multipliers=(16.0, 4.0))
        with pytest.raises(ValueError):
            BudgetLadder(decompose_budget_multiplier=0.0)

    def test_scaled_budget(self):
        base = SolverBudget(
            max_conflicts=10,
            max_propagations=None,
            max_ground_instances=3,
            timeout_seconds=1.0,
        )
        scaled = base.scaled(4.0)
        assert scaled.max_conflicts == 40
        assert scaled.max_propagations is None
        assert scaled.max_ground_instances == 12
        assert scaled.timeout_seconds == 4.0
        with pytest.raises(ValueError):
            base.scaled(0.0)

    def test_escalation_rescues_starved_query(self, small_policy_text):
        pipeline = BudgetStarvingPipeline(
            config=PipelineConfig(budget_ladder=BudgetLadder()),
            starve_questions=(QUESTION,),
        )
        model = pipeline.process(small_policy_text)
        outcome = pipeline.query(model, QUESTION)
        assert outcome.verdict is not Verdict.UNKNOWN
        report = outcome.degradation
        assert report is not None
        assert report.rescued
        assert report.final_rung == "escalate"
        assert report.steps[0].rung == "escalate"
        assert "budget" in report.base_reason
        assert outcome.metrics.degraded_queries == 1
        assert outcome.metrics.ladder_rescues == 1
        assert outcome.metrics.ladder_escalations >= 1
        # The report travels with the deterministic trace and the summary.
        assert outcome.as_dict()["degradation"]["rescued"] is True
        assert "degradation ladder" in outcome.summary()

    def test_unstarved_queries_skip_the_ladder(self, small_policy_text):
        pipeline = BudgetStarvingPipeline(
            config=PipelineConfig(budget_ladder=BudgetLadder()),
            starve_questions=(QUESTION,),
        )
        model = pipeline.process(small_policy_text)
        outcome = pipeline.query(model, "Acme collects the phone number.")
        assert outcome.degradation is None
        assert outcome.metrics.degraded_queries == 0

    def test_decomposition_rescues_when_escalation_cannot(self, small_model):
        """A policy-sized encoding over budget, rescued by its data branch."""
        pipeline = PolicyPipeline()
        full = _full_graph_subgraph(small_model)
        components = split_components(full)
        assert len(components) > 1

        resolved = pipeline.runner.resolve_coreferences(
            "Acme collects email address.", small_model.company
        )
        params = pipeline.runner.extract_parameters(
            resolved, small_model.company
        )[0]
        encoded = encode_query(full, params)
        # Too small for the full graph, ample for the email component —
        # and one doubling does not close the gap.
        base = SolverBudget(
            max_conflicts=None,
            max_propagations=None,
            max_ground_instances=100,
            timeout_seconds=None,
        )
        initial = verify_encoded(encoded, budget=base)
        assert initial.verdict is Verdict.UNKNOWN
        assert is_budget_limited(initial)

        final, report = execute_ladder(
            full,
            params,
            initial,
            ladder=BudgetLadder(multipliers=(2.0,)),
            base_budget=base,
            encoded=encoded,
        )
        assert final.verdict is Verdict.VALID
        assert report.rescued
        assert report.final_rung == "decompose"
        assert report.escalations == 1
        assert report.decompositions == 1
        escalate, decompose = report.steps
        assert escalate.verdict == "UNKNOWN"
        assert decompose.verdict == "VALID"
        assert decompose.sound  # a component VALID is sound for the whole
        assert "component" in decompose.detail

    def test_component_lookup_matches_query_terms(self, small_model):
        components = split_components(_full_graph_subgraph(small_model))
        component = component_for_terms(components, ["email address"])
        assert component is not None
        assert "email address" in component.data_terms
        assert component_for_terms(components, ["no such term"]) is None

    def test_unrescued_ladder_reports_every_step(self, small_policy_text):
        # Escalation multipliers too small to matter, decomposition
        # disabled: the original UNKNOWN must stand, with the trail intact.
        pipeline = BudgetStarvingPipeline(
            config=PipelineConfig(
                budget_ladder=BudgetLadder(
                    multipliers=(1.5,), decompose=False
                )
            ),
            starve_questions=(QUESTION,),
        )
        model = pipeline.process(small_policy_text)
        outcome = pipeline.query(model, QUESTION)
        assert outcome.verdict is Verdict.UNKNOWN
        report = outcome.degradation
        assert report is not None
        assert not report.rescued
        assert report.final_rung is None
        assert "not rescued" in report.summary()
        assert outcome.metrics.ladder_rescues == 0


class TestStrictTranslation:
    QUESTION = "Acme collects the shoe size."

    def test_strict_mode_raises_with_terms(self, small_model):
        pipeline = PolicyPipeline(
            config=PipelineConfig(strict_translation=True, min_similarity=0.99)
        )
        with pytest.raises(TranslationError) as excinfo:
            pipeline.query(small_model, self.QUESTION)
        assert excinfo.value.terms  # names the untranslatable terms
        assert all(isinstance(t, str) for t in excinfo.value.terms)

    def test_default_mode_counts_fallbacks(self, small_model):
        pipeline = PolicyPipeline(
            config=PipelineConfig(min_similarity=0.99, enable_query_caches=False)
        )
        outcome = pipeline.query(small_model, self.QUESTION)
        assert outcome.metrics.translation_fallbacks >= 1
        assert any(t.fell_back for t in outcome.translations.values())

    def test_strict_error_isolated_in_batch(self, small_model):
        pipeline = PolicyPipeline(
            config=PipelineConfig(strict_translation=True, min_similarity=0.99)
        )
        batch = pipeline.query_batch(small_model, [self.QUESTION], max_workers=1)
        (outcome,) = batch.outcomes
        assert isinstance(outcome, ErrorOutcome)
        assert outcome.stage == "translate"
        assert outcome.error_type == "TranslationError"


class TestBatchFaultIsolation:
    # The poisoned question is declarative: interrogatives are rewritten
    # by normalization before any prompt is rendered, so their original
    # text never appears at the LLM boundary.
    QUESTIONS = [
        "Acme collects the email address.",
        "Acme collects the phone number.",
        "Acme shares the location information with advertisers.",
    ]

    def _poisoned_pipeline(self, poison: str) -> PolicyPipeline:
        llm = CachedLLM(
            FaultInjectingLLM(SimulatedLLM(), fail_substrings=(poison,))
        )
        return PolicyPipeline(llm=llm)

    def test_failed_query_becomes_error_outcome(self, small_policy_text):
        poison = self.QUESTIONS[1]
        pipeline = self._poisoned_pipeline(poison)
        model = PolicyPipeline().process(small_policy_text)
        batch = pipeline.query_batch(model, self.QUESTIONS, max_workers=2)
        assert [o.question for o in batch.outcomes] == self.QUESTIONS
        good_a, error, good_b = batch.outcomes
        assert isinstance(error, ErrorOutcome)
        assert error.verdict is Verdict.ERROR
        assert error.failed is True
        assert error.stage == "parse"  # the first LLM call carries the text
        assert error.error_type == "InjectedFaultError"
        assert not good_a.failed and not good_b.failed
        assert batch.errors == [error]
        assert batch.succeeded == [good_a, good_b]
        assert batch.metrics.query_errors == 1
        assert "1 isolated failures" in batch.summary()
        as_dict = batch.as_dict()
        assert as_dict["errors"] == 1
        assert as_dict["verdicts"]["ERROR"] == 1
        assert as_dict["outcomes"][1]["error"]["stage"] == "parse"
        assert "ERROR in parse stage" in error.summary()

    def test_isolation_can_be_disabled(self, small_policy_text):
        poison = self.QUESTIONS[1]
        pipeline = self._poisoned_pipeline(poison)
        model = PolicyPipeline().process(small_policy_text)
        with pytest.raises(Exception, match="injected LLM fault"):
            pipeline.query_batch(
                model, self.QUESTIONS, max_workers=1, isolate_faults=False
            )

    def test_unaffected_queries_match_fault_free_run(self, small_policy_text):
        clean = PolicyPipeline()
        model = clean.process(small_policy_text)
        baseline = {
            q: clean.query(model, q).as_dict() for q in self.QUESTIONS
        }
        poisoned = self._poisoned_pipeline(self.QUESTIONS[1])
        model2 = PolicyPipeline().process(small_policy_text)
        batch = poisoned.query_batch(model2, self.QUESTIONS, max_workers=3)
        for outcome in batch.outcomes:
            if isinstance(outcome, ErrorOutcome):
                continue
            assert outcome.as_dict() == baseline[outcome.question]
