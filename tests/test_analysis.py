"""Unit tests for the analysis layer (contradictions, diffing, coverage)."""

import pytest

from repro.analysis import (
    ExceptionPattern,
    classify_exception,
    coverage_report,
    diff_policies,
    find_contradictions,
    render_contradictions,
    render_coverage,
    render_diff,
)
from repro.core.extraction import extract_policy
from repro.core.graphs import PolicyGraph
from repro.core.hierarchy import Taxonomy
from repro.core.parameters import annotate
from repro.llm.tasks import ExtractedParameters


def _practice(sender, action, data_type, receiver=None, condition=None, permission=True, seg="s1"):
    return annotate(
        ExtractedParameters(
            sender=sender,
            receiver=receiver,
            subject="user",
            data_type=data_type,
            action=action,
            condition=condition,
            permission=permission,
        ),
        segment_id=seg,
        segment_index=0,
    )


class TestClassifyException:
    def _denial(self):
        return _practice("acme", "share", "location", receiver="third parties", permission=False)

    def test_condition_wins(self):
        permission = _practice(
            "acme", "share", "location", receiver="third parties",
            condition="with your consent",
        )
        assert classify_exception(self._denial(), permission) is ExceptionPattern.CONDITIONAL_EXCEPTION

    def test_receiver_scoping(self):
        permission = _practice("acme", "share", "location", receiver="mapping services")
        assert classify_exception(self._denial(), permission) is ExceptionPattern.RECEIVER_SCOPED

    def test_narrower_data(self):
        permission = _practice("acme", "share", "approximate location")
        assert (
            classify_exception(self._denial(), permission, data_is_narrower=True)
            is ExceptionPattern.NARROWER_DATA
        )

    def test_contradiction_when_unscoped(self):
        permission = _practice("acme", "share", "location", receiver="third parties")
        assert classify_exception(self._denial(), permission) is ExceptionPattern.CONTRADICTION

    def test_coherence_flag(self):
        assert ExceptionPattern.CONDITIONAL_EXCEPTION.is_coherent
        assert not ExceptionPattern.CONTRADICTION.is_coherent


class TestFindContradictions:
    def test_detects_share_vs_deny(self):
        practices = [
            _practice("acme", "share", "location", permission=False),
            _practice("acme", "share", "location", condition="with your consent", seg="s2"),
        ]
        report = find_contradictions(practices)
        assert report.total == 1
        assert report.coherent_fraction == 1.0

    def test_cross_verb_same_group(self):
        practices = [
            _practice("acme", "sell", "email", permission=False),
            _practice("acme", "disclose", "email", seg="s2"),
        ]
        report = find_contradictions(practices)
        assert report.total == 1
        assert report.genuine  # unscoped disclosure contradicts no-sell

    def test_different_groups_not_compared(self):
        practices = [
            _practice("acme", "sell", "email", permission=False),
            _practice("acme", "collect", "email", seg="s2"),
        ]
        assert find_contradictions(practices).total == 0

    def test_hierarchy_related_data(self):
        taxonomy = Taxonomy(root="data")
        taxonomy.add("location", "data")
        taxonomy.add("gps location", "location")
        practices = [
            _practice("acme", "share", "location", permission=False),
            _practice("acme", "share", "gps location", seg="s2"),
        ]
        report = find_contradictions(practices, data_taxonomy=taxonomy)
        assert report.total == 1
        assert report.contradictions[0].pattern is ExceptionPattern.NARROWER_DATA

    def test_sender_scoping(self):
        practices = [
            _practice("acme", "share", "email", permission=False),
            _practice("user", "share", "email", seg="s2"),
        ]
        assert find_contradictions(practices).total == 0
        assert find_contradictions(practices, same_sender_only=False).total == 1

    def test_by_pattern_counts(self):
        practices = [
            _practice("acme", "share", "location", permission=False),
            _practice("acme", "share", "location", condition="if required", seg="s2"),
            _practice("acme", "share", "location", receiver="third parties", seg="s3"),
        ]
        report = find_contradictions(practices)
        counts = report.by_pattern()
        assert counts.get("conditional_exception") == 1
        assert counts.get("contradiction") == 1

    def test_empty_input(self):
        report = find_contradictions([])
        assert report.total == 0
        assert report.coherent_fraction == 1.0


class TestGroundTruthRecovery:
    def test_injected_pairs_recovered(self, pipeline):
        """The generator's ground-truth exception pairs are all detected and
        correctly classified on a freshly generated policy."""
        from repro.corpus.generator import GeneratorProfile, PolicyGenerator

        profile = GeneratorProfile(
            company="Probe",
            platform="Probe",
            seed=99,
            exception_pairs=8,
            incoherent_exception_fraction=0.25,
        )
        doc = PolicyGenerator(profile).generate(2500)
        extraction = extract_policy(pipeline.runner, doc.text, company="Probe")
        report = find_contradictions(extraction.practices)
        # Extraction singularizes data types; normalize the ground truth.
        from repro.nlp.morphology import singularize_phrase

        truth_incoherent = {
            singularize_phrase(p.data_type) for p in doc.exception_pairs if not p.coherent
        }
        found_incoherent = {c.denial.data_type for c in report.genuine}
        assert truth_incoherent <= found_incoherent
        truth_coherent = {
            singularize_phrase(p.data_type) for p in doc.exception_pairs if p.coherent
        }
        found_coherent = {c.denial.data_type for c in report.coherent}
        assert truth_coherent <= found_coherent


class TestDiffPolicies:
    def test_identical_versions(self, runner, small_policy_text):
        a = extract_policy(runner, small_policy_text)
        b = extract_policy(runner, small_policy_text)
        diff = diff_policies(a, b)
        assert diff.is_empty

    def test_added_practice_detected(self, runner, small_policy_text):
        a = extract_policy(runner, small_policy_text)
        b = extract_policy(
            runner, small_policy_text + "\nWe collect your shoe size.\n", company="Acme"
        )
        diff = diff_policies(a, b)
        assert any(p.data_type == "shoe size" for p in diff.added_practices)

    def test_removed_practice_detected(self, runner, small_policy_text):
        a = extract_policy(runner, small_policy_text)
        b = extract_policy(
            runner,
            small_policy_text.replace(
                "We delete your message content after 90 days.", ""
            ),
            company="Acme",
        )
        diff = diff_policies(a, b)
        assert any(p.action == "delete" for p in diff.removed_practices)

    def test_condition_change_detected(self, runner):
        a = extract_policy(
            runner, "Acme Privacy Policy.\nWe share your email with advertisers.",
            company="Acme",
        )
        b = extract_policy(
            runner,
            "Acme Privacy Policy.\nWe share your email with advertisers with your consent.",
            company="Acme",
        )
        diff = diff_policies(a, b)
        assert diff.condition_changes


class TestCoverage:
    def _graph(self):
        g = PolicyGraph("Acme")
        g.add_practices(
            [
                _practice("acme", "collect", "email"),
                _practice("acme", "retain", "email", seg="s2"),
                _practice("acme", "collect", "location", seg="s3"),
                _practice("acme", "share", "email", receiver="advertisers", seg="s4"),
                _practice(
                    "acme", "share", "location", receiver="partners",
                    condition="for legitimate business purposes", seg="s5",
                ),
            ]
        )
        return g

    def test_retention_gap_found(self):
        report = coverage_report(self._graph())
        assert "location" in report.collection_without_retention
        assert "email" not in report.collection_without_retention

    def test_unconditional_sharing_flagged(self):
        report = coverage_report(self._graph())
        assert any("email" in desc for desc in report.unconditional_sharing)

    def test_vague_counts(self):
        report = coverage_report(self._graph())
        assert report.vague_term_counts.get("legitimate_business_purpose", 0) >= 1

    def test_fractions_bounded(self):
        report = coverage_report(self._graph())
        assert 0.0 <= report.conditional_edge_fraction <= 1.0
        assert 0.0 <= report.vague_edge_fraction <= 1.0

    def test_empty_graph(self):
        report = coverage_report(PolicyGraph("Acme"))
        assert report.summary()["collected_data_types"] == 0


class TestRendering:
    def test_render_contradictions(self):
        practices = [
            _practice("acme", "share", "location", permission=False),
            _practice("acme", "share", "location", receiver="third parties", seg="s2"),
        ]
        text = render_contradictions(find_contradictions(practices))
        assert "apparent contradictions: 1" in text
        assert "genuine contradictions needing review:" in text

    def test_render_coverage(self):
        text = render_coverage(coverage_report(PolicyGraph("Acme")))
        assert text.startswith("coverage report:")

    def test_render_diff(self, runner, small_policy_text):
        a = extract_policy(runner, small_policy_text)
        diff = diff_policies(a, a)
        assert "policy diff:" in render_diff(diff)
