"""Property tests for the quantified solver path.

Random first-order formulas over a tiny fixed universe are checked two
ways: by the full solver stack (grounding → Tseitin → CDCL) and by an
independent brute-force model checker that enumerates every interpretation
of the predicates over the universe and evaluates the *original* quantified
formula recursively.  Both must agree on satisfiability; when SAT, the
solver's model must satisfy the formula under the oracle's semantics.

The SMT-LIB round trip is covered too: serializing each formula to text,
parsing it back, and solving must give the same verdict.
"""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fol.formula import (
    And,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Predicate,
    PredicateSymbol,
)
from repro.fol.terms import Constant, Sort, Variable
from repro.smtlib import compile_validity_script, execute_script
from repro.smtlib.printer import compile_formula
from repro.smtlib.script import Assert, CheckSat, SMTScript, SetLogic
from repro.smtlib.printer import _declarations
from repro.solver import SatResult, Solver

S = Sort("S")
CONSTANTS = (Constant("a", S), Constant("b", S))
P = PredicateSymbol("p", (S,))
R = PredicateSymbol("r", (S, S))
VARIABLES = (Variable("x", S), Variable("y", S))


def _random_formula(rng: random.Random, bound: list[Variable], depth: int) -> Formula:
    choices = ["atom"]
    if depth < 3:
        choices += ["not", "and", "or", "implies", "forall", "exists"]
    kind = rng.choice(choices)
    if kind == "atom":
        def term():
            pool = list(CONSTANTS) + bound
            return rng.choice(pool)

        if rng.random() < 0.5:
            return P(term())
        return R(term(), term())
    if kind == "not":
        return Not(_random_formula(rng, bound, depth + 1))
    if kind in ("and", "or"):
        a = _random_formula(rng, bound, depth + 1)
        b = _random_formula(rng, bound, depth + 1)
        return And((a, b)) if kind == "and" else Or((a, b))
    if kind == "implies":
        return Implies(
            _random_formula(rng, bound, depth + 1),
            _random_formula(rng, bound, depth + 1),
        )
    var = VARIABLES[len(bound) % len(VARIABLES)]
    if var in bound:
        var = Variable(var.name + "_", S)
    body = _random_formula(rng, bound + [var], depth + 1)
    return Forall(var, body) if kind == "forall" else Exists(var, body)


Interpretation = tuple[dict[str, bool], dict[tuple[str, str], bool]]


def _interpretations():
    names = [c.name for c in CONSTANTS]
    unary_keys = names
    binary_keys = list(itertools.product(names, names))
    for unary_bits in itertools.product([False, True], repeat=len(unary_keys)):
        unary = dict(zip(unary_keys, unary_bits))
        for binary_bits in itertools.product([False, True], repeat=len(binary_keys)):
            binary = dict(zip(binary_keys, binary_bits))
            yield unary, binary


def _evaluate(formula: Formula, interp: Interpretation, env: dict[str, str]) -> bool:
    unary, binary = interp

    def term_value(term) -> str:
        if isinstance(term, Constant):
            return term.name
        return env[term.name]

    if isinstance(formula, Predicate):
        if formula.symbol.name == "p":
            return unary[term_value(formula.args[0])]
        return binary[(term_value(formula.args[0]), term_value(formula.args[1]))]
    if isinstance(formula, Not):
        return not _evaluate(formula.operand, interp, env)
    if isinstance(formula, And):
        return all(_evaluate(op, interp, env) for op in formula.operands)
    if isinstance(formula, Or):
        return any(_evaluate(op, interp, env) for op in formula.operands)
    if isinstance(formula, Implies):
        return (not _evaluate(formula.antecedent, interp, env)) or _evaluate(
            formula.consequent, interp, env
        )
    if isinstance(formula, Forall):
        return all(
            _evaluate(formula.body, interp, {**env, formula.variable.name: c.name})
            for c in CONSTANTS
        )
    if isinstance(formula, Exists):
        return any(
            _evaluate(formula.body, interp, {**env, formula.variable.name: c.name})
            for c in CONSTANTS
        )
    raise TypeError(formula)


def _oracle_sat(formula: Formula) -> bool:
    return any(_evaluate(formula, interp, {}) for interp in _interpretations())


def _solver_verdict(formula: Formula) -> SatResult:
    solver = Solver()
    for const in CONSTANTS:
        solver.declare_constant(const)
    solver.assert_formula(formula)
    return solver.check_sat().status


class TestQuantifiedSolverAgainstOracle:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=150, deadline=None)
    def test_satisfiability_agrees(self, seed):
        formula = _random_formula(random.Random(seed), [], 0)
        expected = _oracle_sat(formula)
        got = _solver_verdict(formula)
        assert got is (SatResult.SAT if expected else SatResult.UNSAT)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=100, deadline=None)
    def test_model_satisfies_formula(self, seed):
        formula = _random_formula(random.Random(seed), [], 0)
        solver = Solver()
        for const in CONSTANTS:
            solver.declare_constant(const)
        solver.assert_formula(formula)
        result = solver.check_sat()
        if not result.is_sat:
            return
        unary = {c.name: result.model.get(f"p({c.name})", False) for c in CONSTANTS}
        binary = {
            (c.name, d.name): result.model.get(f"r({c.name},{d.name})", False)
            for c in CONSTANTS
            for d in CONSTANTS
        }
        assert _evaluate(formula, (unary, binary), {})

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=80, deadline=None)
    def test_smtlib_round_trip_agrees(self, seed):
        formula = _random_formula(random.Random(seed), [], 0)
        script = SMTScript()
        script.add(SetLogic("UF"))
        _declarations([formula], script)
        # The oracle's universe has exactly a and b; make sure both are
        # declared even when the formula mentions only one.
        declared = {
            c.name
            for c in script.commands
            if c.__class__.__name__ == "DeclareConst"
        }
        from repro.smtlib.script import DeclareConst, DeclareSort

        if not any(c.__class__.__name__ == "DeclareSort" for c in script.commands):
            script.add(DeclareSort("S"))
        for const in CONSTANTS:
            if const.name not in declared:
                script.add(DeclareConst(const.name, "S"))
        script.add(Assert(compile_formula(formula)))
        script.add(CheckSat())
        results = execute_script(script.to_text())
        assert results[0].status is _solver_verdict(formula)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_entailment_script_matches_oracle(self, seed):
        rng = random.Random(seed)
        policy = _random_formula(rng, [], 1)
        query = _random_formula(rng, [], 1)
        script = compile_validity_script([policy], query)
        # Ensure both constants exist in the executed universe.
        from repro.smtlib.script import DeclareConst

        text_lines = script.to_text().splitlines()
        for const in CONSTANTS:
            decl = f"(declare-const {const.name} S)"
            if decl not in text_lines:
                index = next(
                    i for i, line in enumerate(text_lines) if line.startswith("(assert")
                )
                text_lines.insert(index, decl)
        results = execute_script("\n".join(text_lines))
        entailed_oracle = all(
            not _evaluate(policy, interp, {}) or _evaluate(query, interp, {})
            for interp in _interpretations()
        )
        assert results[0].is_unsat == entailed_oracle
