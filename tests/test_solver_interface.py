"""Unit tests for the Solver façade and DPLL(T) integration."""

import pytest

from repro.errors import SolverError
from repro.fol import (
    DATA,
    ENTITY,
    Constant,
    PredicateSymbol,
    Variable,
    forall,
    implies,
    negate,
    pred,
)
from repro.solver import SatResult, Solver, SolverBudget

E1 = Constant("tiktak", ENTITY)
E2 = Constant("advertisers", ENTITY)
D1 = Constant("email", DATA)
D2 = Constant("location", DATA)
SHARE = PredicateSymbol("share", (ENTITY, DATA))
CONSENT = PredicateSymbol("consent", (DATA,))
EQ = PredicateSymbol("=", (ENTITY, ENTITY))


class TestBasicChecks:
    def test_empty_is_sat(self):
        assert Solver().check_sat().status is SatResult.SAT

    def test_atom_model_readable(self):
        solver = Solver()
        solver.assert_formula(SHARE(E1, D1))
        result = solver.check_sat()
        assert result.is_sat
        assert result.model["share(tiktak,email)"] is True

    def test_contradiction(self):
        solver = Solver()
        solver.assert_formula(SHARE(E1, D1))
        solver.assert_formula(negate(SHARE(E1, D1)))
        assert solver.check_sat().is_unsat

    def test_modus_ponens_entailment(self):
        solver = Solver()
        solver.assert_formula(implies(SHARE(E1, D1), CONSENT(D1)))
        solver.assert_formula(SHARE(E1, D1))
        solver.assert_formula(negate(CONSENT(D1)))
        assert solver.check_sat().is_unsat


class TestQuantifiers:
    def test_forall_grounds_over_declared_constants(self):
        solver = Solver()
        x = Variable("x", DATA)
        solver.declare_constant(D1)
        solver.declare_constant(D2)
        solver.assert_formula(forall(x, implies(SHARE(E1, x), CONSENT(x))))
        solver.assert_formula(SHARE(E1, D2))
        solver.assert_formula(negate(CONSENT(D2)))
        assert solver.check_sat().is_unsat

    def test_constants_autodeclared_from_assertions(self):
        solver = Solver()
        solver.assert_formula(SHARE(E1, D1))
        assert solver.universe.size(ENTITY) == 1
        assert solver.universe.size(DATA) == 1


class TestPushPop:
    def test_pop_restores(self):
        solver = Solver()
        solver.assert_formula(SHARE(E1, D1))
        solver.push()
        solver.assert_formula(negate(SHARE(E1, D1)))
        assert solver.check_sat().is_unsat
        solver.pop()
        assert solver.check_sat().is_sat

    def test_pop_empty_raises(self):
        with pytest.raises(SolverError):
            Solver().pop()

    def test_nested_scopes(self):
        solver = Solver()
        solver.push()
        solver.push()
        solver.assert_formula(SHARE(E1, D1))
        assert len(solver.assertions) == 1
        solver.pop()
        assert len(solver.assertions) == 0
        solver.pop()


class TestCheckSatAssuming:
    def test_assumptions_are_temporary(self):
        solver = Solver()
        solver.assert_formula(implies(SHARE(E1, D1), CONSENT(D1)))
        unsat = solver.check_sat_assuming([SHARE(E1, D1), negate(CONSENT(D1))])
        assert unsat.is_unsat
        assert solver.check_sat().is_sat

    def test_multiple_assuming_calls_reuse_solver(self):
        solver = Solver()
        solver.assert_formula(implies(SHARE(E1, D1), CONSENT(D1)))
        first = solver.check_sat_assuming([SHARE(E1, D1)])
        second = solver.check_sat_assuming([negate(CONSENT(D1))])
        assert first.is_sat and second.is_sat

    def test_non_literal_assumption_rejected(self):
        solver = Solver()
        with pytest.raises(SolverError):
            solver.check_sat_assuming([implies(SHARE(E1, D1), CONSENT(D1))])


class TestEUFIntegration:
    def test_equality_predicate_congruence(self):
        solver = Solver()
        p = PredicateSymbol("trusted", (ENTITY,))
        solver.assert_formula(EQ(E1, E2))
        solver.assert_formula(p(E1))
        solver.assert_formula(negate(p(E2)))
        assert solver.check_sat().is_unsat

    def test_equality_sat_when_consistent(self):
        solver = Solver()
        p = PredicateSymbol("trusted", (ENTITY,))
        solver.assert_formula(EQ(E1, E2))
        solver.assert_formula(p(E1))
        solver.assert_formula(p(E2))
        assert solver.check_sat().is_sat


class TestBudgetsToUnknown:
    def test_grounding_budget_reports_unknown(self):
        solver = Solver(SolverBudget(max_ground_instances=1))
        x = Variable("x", DATA)
        y = Variable("y", DATA)
        solver.declare_constant(D1)
        solver.declare_constant(D2)
        solver.assert_formula(forall(x, forall(y, implies(SHARE(E1, x), CONSENT(y)))))
        result = solver.check_sat()
        assert result.is_unknown
        assert "grounding budget" in result.reason

    def test_conflict_budget_reports_unknown(self):
        # PHP(7,6) with a 5-conflict cap cannot finish.
        solver = Solver(SolverBudget(max_conflicts=5))
        hole = PredicateSymbol("hole", (ENTITY, ENTITY))
        pigeons = [Constant(f"p{i}", ENTITY) for i in range(7)]
        holes = [Constant(f"h{i}", ENTITY) for i in range(6)]
        from repro.fol.builder import disjoin, conjoin

        for p in pigeons:
            solver.assert_formula(disjoin([hole(p, h) for h in holes]))
        for h in holes:
            for i in range(len(pigeons)):
                for j in range(i + 1, len(pigeons)):
                    solver.assert_formula(
                        negate(hole(pigeons[i], h)) | negate(hole(pigeons[j], h))
                    )
        result = solver.check_sat()
        assert result.is_unknown
        assert "budget" in result.reason or "timeout" in result.reason

    def test_statistics_populated(self):
        solver = Solver()
        solver.assert_formula(SHARE(E1, D1))
        result = solver.check_sat()
        assert result.statistics.variables >= 1
