"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def policy_file(tmp_path, small_policy_text):
    path = tmp_path / "policy.txt"
    path.write_text(small_policy_text, "utf-8")
    return str(path)


class TestProcess:
    def test_prints_statistics(self, policy_file, capsys):
        assert main(["process", policy_file]) == 0
        out = capsys.readouterr().out
        assert "company: Acme" in out
        assert "total_edges:" in out
        assert "llm calls:" in out

    def test_artifacts_written(self, policy_file, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        assert main(["process", policy_file, "--artifacts", str(artifacts)]) == 0
        assert (artifacts / "practices.json").exists()
        practices = json.loads((artifacts / "practices.json").read_text())
        assert practices

    def test_missing_file_exit_code(self, capsys):
        assert main(["process", "/nonexistent/policy.txt"]) == 3
        assert "error:" in capsys.readouterr().err

    def test_empty_file_rejected(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("   \n", "utf-8")
        assert main(["process", str(empty)]) == 3


class TestQuery:
    def test_valid_query_exit_zero(self, policy_file, capsys):
        code = main(["query", policy_file, "Acme collects the name."])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: VALID" in out

    def test_invalid_query_exit_one(self, policy_file, capsys):
        code = main(
            ["query", policy_file, "Acme sells contact information to third parties."]
        )
        assert code == 1
        assert "verdict: INVALID" in capsys.readouterr().out

    def test_smtlib_flag_dumps_script(self, policy_file, capsys):
        main(["query", policy_file, "Acme collects the name.", "--smtlib"])
        out = capsys.readouterr().out
        assert "(check-sat)" in out
        assert "(set-logic UF)" in out


class TestAudit:
    def test_audit_reports(self, policy_file, capsys):
        main(["audit", policy_file])
        out = capsys.readouterr().out
        assert "apparent contradictions:" in out
        assert "coverage report:" in out


class TestDiff:
    def test_identical_versions_exit_zero(self, policy_file, capsys):
        assert main(["diff", policy_file, policy_file]) == 0
        assert "policy diff:" in capsys.readouterr().out

    def test_changed_version_exit_one(self, policy_file, tmp_path, small_policy_text, capsys):
        new = tmp_path / "v2.txt"
        new.write_text(small_policy_text + "\nWe collect your shoe size.\n", "utf-8")
        assert main(["diff", policy_file, str(new)]) == 1
        out = capsys.readouterr().out
        assert "shoe size" in out


class TestCorpus:
    def test_corpus_to_stdout(self, capsys):
        assert main(["corpus", "tiktak"]) == 0
        out = capsys.readouterr().out
        assert "TikTak Privacy Policy" in out

    def test_corpus_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "policy.txt"
        assert main(["corpus", "meditrack", "--out", str(out_path)]) == 0
        assert "MediTrack" in out_path.read_text("utf-8")

    def test_unknown_corpus_rejected(self):
        with pytest.raises(SystemExit):
            main(["corpus", "bogus"])


class TestSnapshot:
    def test_save_then_load(self, policy_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["snapshot", "save", policy_file, "--store", store]) == 0
        assert "committed snap-000001" in capsys.readouterr().out
        assert main(["snapshot", "load", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "loaded snap-000001" in out
        assert "company: Acme" in out

    def test_load_missing_store_exit_four(self, tmp_path, capsys):
        code = main(["snapshot", "load", "--store", str(tmp_path / "nope")])
        assert code == 4
        assert "snapshot error:" in capsys.readouterr().err

    def test_corrupt_store_exit_four_with_report(
        self, policy_file, tmp_path, capsys
    ):
        store = tmp_path / "store"
        main(["snapshot", "save", policy_file, "--store", str(store)])
        capsys.readouterr()
        (store / "snapshots" / "snap-000001" / "graph.json").write_bytes(b"~")
        code = main(["snapshot", "load", "--store", str(store)])
        err = capsys.readouterr().err
        assert code == 4
        assert "quarantined snap-000001" in err

    def test_audit_clean_store_exit_zero(self, policy_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["snapshot", "save", policy_file, "--store", store])
        code = main(
            ["snapshot", "audit", "--store", store, "--policy", policy_file]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "structure audit: PASS" in out
        assert "parity audit: PASS" in out

    def test_audit_heal_requires_policy(self, policy_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["snapshot", "save", policy_file, "--store", store])
        code = main(["snapshot", "audit", "--store", store, "--heal"])
        assert code == 3
        assert "--heal requires --policy" in capsys.readouterr().err

    def test_query_from_snapshot(self, policy_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["snapshot", "save", policy_file, "--store", store])
        capsys.readouterr()
        code = main(
            ["query", "--from-snapshot", store, "Acme collects the name."]
        )
        assert code == 0
        assert "verdict: VALID" in capsys.readouterr().out

    def test_query_rejects_both_sources(self, policy_file, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    policy_file,
                    "Acme collects the name.",
                    "--from-snapshot",
                    str(tmp_path),
                ]
            )

    def test_query_requires_some_source(self):
        with pytest.raises(SystemExit):
            main(["query", "Acme collects the name."])

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "4  snapshot corruption" in out
        assert "6  job aborted" in out


@pytest.fixture()
def queries_file(tmp_path):
    path = tmp_path / "queries.txt"
    path.write_text(
        "# audit suite\n"
        "Acme collects the email address.\n"
        "\n"
        "Acme shares the usage information with analytics providers.\n"
        "Acme sells the contact information.\n"
        "Does Acme collect my name?\n",
        "utf-8",
    )
    return str(path)


class TestBatch:
    def test_run_answers_every_question(
        self, policy_file, queries_file, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "ckpt")
        code = main(
            ["batch", "run", policy_file, queries_file, "--checkpoint", ckpt]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[0] VALID" in out
        assert "4/4 queries" in out
        assert (tmp_path / "ckpt" / "journal.jsonl").exists()

    def test_resume_restores_committed_results(
        self, policy_file, queries_file, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "ckpt")
        main(["batch", "run", policy_file, queries_file, "--checkpoint", ckpt])
        capsys.readouterr()
        code = main(["batch", "resume", policy_file, "--checkpoint", ckpt])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("(restored)") == 4
        assert "4 restored from checkpoint" in out

    def test_json_report_written(
        self, policy_file, queries_file, tmp_path, capsys
    ):
        report = tmp_path / "result.json"
        code = main(
            [
                "batch",
                "run",
                policy_file,
                queries_file,
                "--checkpoint",
                str(tmp_path / "ckpt"),
                "--stats",
                "--json",
                str(report),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "checkpoint: 4 written" in out  # --stats metrics block
        data = json.loads(report.read_text("utf-8"))
        assert data["completed"] == 4
        assert data["aborted"] is False

    def test_aborted_run_exit_six_then_resume(
        self, policy_file, queries_file, tmp_path, monkeypatch, capsys
    ):
        import time

        import repro.jobs as jobs

        real_runner = jobs.JobRunner

        class DrainingRunner(real_runner):
            """Drains after the first answer — a scripted Ctrl-C."""

            def run(self, questions):
                def query_fn(index, question, certify, heartbeat):
                    if index == 0:
                        self.request_drain()
                    else:
                        deadline = time.monotonic() + 10.0
                        while (
                            not self._drain_applied
                            and time.monotonic() < deadline
                        ):
                            time.sleep(0.002)
                    return self.pipeline.query(
                        self.model, question, certify=certify
                    )

                self._query_fn = query_fn
                return super().run(questions)

        monkeypatch.setattr(jobs, "JobRunner", DrainingRunner)
        ckpt = str(tmp_path / "ckpt")
        code = main(
            [
                "batch",
                "run",
                policy_file,
                queries_file,
                "--checkpoint",
                ckpt,
                "--workers",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 6
        assert "PENDING" in captured.out
        assert "ABORTED" in captured.out
        assert "batch resume --checkpoint" in captured.err

        monkeypatch.setattr(jobs, "JobRunner", real_runner)
        code = main(["batch", "resume", policy_file, "--checkpoint", ckpt])
        out = capsys.readouterr().out
        assert code == 0
        assert "restored from checkpoint" in out
        assert "PENDING" not in out

    def test_resume_requires_checkpoint_flag(self, policy_file):
        with pytest.raises(SystemExit):
            main(["batch", "resume", policy_file])

    def test_resume_without_journal_exit_three(
        self, policy_file, tmp_path, capsys
    ):
        code = main(
            [
                "batch",
                "resume",
                policy_file,
                "--checkpoint",
                str(tmp_path / "empty"),
            ]
        )
        assert code == 3
        assert "error:" in capsys.readouterr().err

    def test_empty_queries_file_rejected(self, policy_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("# only comments\n\n", "utf-8")
        code = main(
            [
                "batch",
                "run",
                policy_file,
                str(queries),
                "--checkpoint",
                str(tmp_path / "ckpt"),
            ]
        )
        assert code == 3
        assert "no questions" in capsys.readouterr().err

    def test_stall_options_accepted(
        self, policy_file, queries_file, tmp_path, capsys
    ):
        code = main(
            [
                "batch",
                "run",
                policy_file,
                queries_file,
                "--checkpoint",
                str(tmp_path / "ckpt"),
                "--stall-after",
                "30",
                "--max-pending",
                "8",
                "--timeout",
                "5.0",
            ]
        )
        assert code == 0
        assert "4/4 queries" in capsys.readouterr().out


class TestQueryTimeout:
    def test_timeout_accepted(self, policy_file, capsys):
        code = main(
            ["query", policy_file, "Acme collects the name.", "--timeout", "5"]
        )
        assert code == 0
        assert "verdict: VALID" in capsys.readouterr().out

    def test_nonpositive_timeout_rejected(self, policy_file, capsys):
        code = main(
            ["query", policy_file, "Acme collects the name.", "--timeout", "0"]
        )
        assert code == 3
        assert "timeout" in capsys.readouterr().err


class TestProviderFlags:
    QUESTION = "Acme collects the name."

    def test_cassette_record_then_replay_round_trip(
        self, policy_file, tmp_path, capsys
    ):
        tape = tmp_path / "tape.jsonl"
        code = main(
            [
                "query",
                policy_file,
                self.QUESTION,
                "--cassette",
                "record",
                "--cassette-path",
                str(tape),
            ]
        )
        recorded_out = capsys.readouterr().out
        assert code == 0
        assert tape.exists() and tape.stat().st_size > 0

        code = main(
            [
                "query",
                policy_file,
                self.QUESTION,
                "--cassette",
                "replay",
                "--cassette-path",
                str(tape),
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == recorded_out

    def test_strict_replay_miss_exits_8(self, policy_file, tmp_path, capsys):
        tape = tmp_path / "empty-tape.jsonl"
        tape.write_text("", "utf-8")
        code = main(
            [
                "query",
                policy_file,
                self.QUESTION,
                "--cassette",
                "replay",
                "--cassette-path",
                str(tape),
            ]
        )
        assert code == 8
        assert "provider error:" in capsys.readouterr().err

    def test_cassette_without_path_is_usage_error(self, policy_file, capsys):
        code = main(["query", policy_file, self.QUESTION, "--cassette", "record"])
        assert code == 3
        assert "cassette" in capsys.readouterr().err

    def test_http_provider_without_env_exits_8(
        self, policy_file, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_LLM_URL", raising=False)
        code = main(
            ["query", policy_file, self.QUESTION, "--llm-provider", "http"]
        )
        assert code == 8
        assert "REPRO_LLM_URL" in capsys.readouterr().err

    def test_profile_query_still_verdicts(self, policy_file, capsys):
        code = main(
            ["query", policy_file, self.QUESTION, "--profile", "flaky-429"]
        )
        assert code == 0
        assert "verdict: VALID" in capsys.readouterr().out

    def test_unknown_profile_is_usage_error(self, policy_file, capsys):
        code = main(
            ["query", policy_file, self.QUESTION, "--profile", "nope"]
        )
        assert code == 3
        assert "unknown stress profile" in capsys.readouterr().err

    def test_stats_surface_llm_boundary_line(self, policy_file, capsys):
        code = main(
            [
                "query",
                policy_file,
                self.QUESTION,
                "--profile",
                "flaky-429",
                "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "llm boundary: breaker closed" in out
        assert "retries" in out
