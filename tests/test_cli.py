"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def policy_file(tmp_path, small_policy_text):
    path = tmp_path / "policy.txt"
    path.write_text(small_policy_text, "utf-8")
    return str(path)


class TestProcess:
    def test_prints_statistics(self, policy_file, capsys):
        assert main(["process", policy_file]) == 0
        out = capsys.readouterr().out
        assert "company: Acme" in out
        assert "total_edges:" in out
        assert "llm calls:" in out

    def test_artifacts_written(self, policy_file, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        assert main(["process", policy_file, "--artifacts", str(artifacts)]) == 0
        assert (artifacts / "practices.json").exists()
        practices = json.loads((artifacts / "practices.json").read_text())
        assert practices

    def test_missing_file_exit_code(self, capsys):
        assert main(["process", "/nonexistent/policy.txt"]) == 3
        assert "error:" in capsys.readouterr().err

    def test_empty_file_rejected(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("   \n", "utf-8")
        assert main(["process", str(empty)]) == 3


class TestQuery:
    def test_valid_query_exit_zero(self, policy_file, capsys):
        code = main(["query", policy_file, "Acme collects the name."])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: VALID" in out

    def test_invalid_query_exit_one(self, policy_file, capsys):
        code = main(
            ["query", policy_file, "Acme sells contact information to third parties."]
        )
        assert code == 1
        assert "verdict: INVALID" in capsys.readouterr().out

    def test_smtlib_flag_dumps_script(self, policy_file, capsys):
        main(["query", policy_file, "Acme collects the name.", "--smtlib"])
        out = capsys.readouterr().out
        assert "(check-sat)" in out
        assert "(set-logic UF)" in out


class TestAudit:
    def test_audit_reports(self, policy_file, capsys):
        main(["audit", policy_file])
        out = capsys.readouterr().out
        assert "apparent contradictions:" in out
        assert "coverage report:" in out


class TestDiff:
    def test_identical_versions_exit_zero(self, policy_file, capsys):
        assert main(["diff", policy_file, policy_file]) == 0
        assert "policy diff:" in capsys.readouterr().out

    def test_changed_version_exit_one(self, policy_file, tmp_path, small_policy_text, capsys):
        new = tmp_path / "v2.txt"
        new.write_text(small_policy_text + "\nWe collect your shoe size.\n", "utf-8")
        assert main(["diff", policy_file, str(new)]) == 1
        out = capsys.readouterr().out
        assert "shoe size" in out


class TestCorpus:
    def test_corpus_to_stdout(self, capsys):
        assert main(["corpus", "tiktak"]) == 0
        out = capsys.readouterr().out
        assert "TikTak Privacy Policy" in out

    def test_corpus_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "policy.txt"
        assert main(["corpus", "meditrack", "--out", str(out_path)]) == 0
        assert "MediTrack" in out_path.read_text("utf-8")

    def test_unknown_corpus_rejected(self):
        with pytest.raises(SystemExit):
            main(["corpus", "bogus"])


class TestSnapshot:
    def test_save_then_load(self, policy_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["snapshot", "save", policy_file, "--store", store]) == 0
        assert "committed snap-000001" in capsys.readouterr().out
        assert main(["snapshot", "load", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "loaded snap-000001" in out
        assert "company: Acme" in out

    def test_load_missing_store_exit_four(self, tmp_path, capsys):
        code = main(["snapshot", "load", "--store", str(tmp_path / "nope")])
        assert code == 4
        assert "snapshot error:" in capsys.readouterr().err

    def test_corrupt_store_exit_four_with_report(
        self, policy_file, tmp_path, capsys
    ):
        store = tmp_path / "store"
        main(["snapshot", "save", policy_file, "--store", str(store)])
        capsys.readouterr()
        (store / "snapshots" / "snap-000001" / "graph.json").write_bytes(b"~")
        code = main(["snapshot", "load", "--store", str(store)])
        err = capsys.readouterr().err
        assert code == 4
        assert "quarantined snap-000001" in err

    def test_audit_clean_store_exit_zero(self, policy_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["snapshot", "save", policy_file, "--store", store])
        code = main(
            ["snapshot", "audit", "--store", store, "--policy", policy_file]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "structure audit: PASS" in out
        assert "parity audit: PASS" in out

    def test_audit_heal_requires_policy(self, policy_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["snapshot", "save", policy_file, "--store", store])
        code = main(["snapshot", "audit", "--store", store, "--heal"])
        assert code == 3
        assert "--heal requires --policy" in capsys.readouterr().err

    def test_query_from_snapshot(self, policy_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["snapshot", "save", policy_file, "--store", store])
        capsys.readouterr()
        code = main(
            ["query", "--from-snapshot", store, "Acme collects the name."]
        )
        assert code == 0
        assert "verdict: VALID" in capsys.readouterr().out

    def test_query_rejects_both_sources(self, policy_file, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    policy_file,
                    "Acme collects the name.",
                    "--from-snapshot",
                    str(tmp_path),
                ]
            )

    def test_query_requires_some_source(self):
        with pytest.raises(SystemExit):
            main(["query", "Acme collects the name."])

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "4  snapshot corruption" in out
