"""Unit tests for SMT-LIB generation, parsing, and execution."""

import pytest

from repro.errors import SMTLibParseError
from repro.fol import (
    DATA,
    ENTITY,
    Constant,
    PredicateSymbol,
    Variable,
    exists,
    forall,
    implies,
    negate,
    uninterpreted,
)
from repro.smtlib import (
    Assert,
    CheckSat,
    DeclareConst,
    DeclareFun,
    SMTScript,
    compile_formula,
    compile_validity_script,
    execute_script,
    parse_script,
    parse_sexprs,
    sexpr_to_text,
)

E1 = Constant("tiktak", ENTITY)
D1 = Constant("email", DATA)
SHARE = PredicateSymbol("share", (ENTITY, DATA))
X = Variable("x", ENTITY)


class TestSexprs:
    def test_parse_simple(self):
        assert parse_sexprs("(check-sat)") == [["check-sat"]]

    def test_parse_nested(self):
        assert parse_sexprs("(assert (not p))") == [["assert", ["not", "p"]]]

    def test_comments_skipped(self):
        assert parse_sexprs("; comment\n(check-sat)") == [["check-sat"]]

    def test_round_trip(self):
        text = "(assert (or (p a) (not (q b))))"
        parsed = parse_sexprs(text)[0]
        assert sexpr_to_text(parsed) == text

    def test_unbalanced_raises(self):
        with pytest.raises(SMTLibParseError):
            parse_sexprs("(assert (p)")

    def test_extra_close_raises(self):
        with pytest.raises(SMTLibParseError):
            parse_sexprs(")")

    def test_quoted_symbol(self):
        assert parse_sexprs("(|weird name|)") == [["|weird name|"]]


class TestCompileFormula:
    def test_atom(self):
        assert sexpr_to_text(compile_formula(SHARE(E1, D1))) == "(share tiktak email)"

    def test_nullary_atom(self):
        flag = PredicateSymbol("flag")
        assert compile_formula(flag()) == "flag"

    def test_quantifier_binder_block(self):
        text = sexpr_to_text(compile_formula(forall(X, SHARE(X, D1))))
        assert text == "(forall ((x Entity)) (share x email))"

    def test_consecutive_quantifiers_merged(self):
        y = Variable("y", ENTITY)
        text = sexpr_to_text(compile_formula(forall([X, y], SHARE(X, D1))))
        assert "((x Entity) (y Entity))" in text

    def test_exists(self):
        text = sexpr_to_text(compile_formula(exists(X, SHARE(X, D1))))
        assert text.startswith("(exists")

    def test_implies(self):
        text = sexpr_to_text(
            compile_formula(implies(SHARE(E1, D1), SHARE(E1, D1)))
        )
        assert text.startswith("(=>")


class TestValidityScript:
    def test_structure(self):
        script = compile_validity_script([SHARE(E1, D1)], SHARE(E1, D1))
        text = script.to_text()
        assert "(set-logic UF)" in text
        assert "(declare-sort Data 0)" in text
        assert "(declare-sort Entity 0)" in text
        assert "(declare-const tiktak Entity)" in text
        assert "(declare-fun share (Entity Data) Bool)" in text
        assert "(check-sat)" in text
        # The query is asserted negated.
        assert "(assert (not (share tiktak email)))" in text

    def test_uninterpreted_comment(self):
        vague = uninterpreted("legitimate business purposes")
        script = compile_validity_script([implies(vague, SHARE(E1, D1))], SHARE(E1, D1))
        assert "uninterpreted (vague term): legitimate business purposes" in script.to_text()

    def test_counts(self):
        script = compile_validity_script([SHARE(E1, D1)], SHARE(E1, D1))
        assert script.num_assertions == 2
        assert script.num_declarations >= 3


class TestParseScript:
    def test_full_round_trip_text(self):
        script = compile_validity_script([SHARE(E1, D1)], SHARE(E1, D1))
        reparsed = parse_script(script.to_text())
        kinds = [type(c).__name__ for c in reparsed.commands]
        assert kinds.count("Assert") == 2
        assert "CheckSat" in kinds

    def test_unknown_command_raises(self):
        with pytest.raises(SMTLibParseError):
            parse_script("(frobnicate)")

    def test_ignored_commands(self):
        script = parse_script("(set-info :status sat)\n(exit)\n(check-sat)")
        assert len(script.commands) == 1

    def test_push_pop_parsed(self):
        script = parse_script("(push 1)(pop 1)")
        assert [type(c).__name__ for c in script.commands] == ["Push", "Pop"]


class TestExecuteScript:
    def test_entailment_unsat(self):
        script = compile_validity_script(
            [forall(X, implies(SHARE(X, D1), SHARE(X, D1)))], SHARE(E1, D1)
        )
        # share(tiktak,email) does not follow from a tautology.
        results = execute_script(script.to_text())
        assert results[0].is_sat

    def test_fact_entails_itself(self):
        script = compile_validity_script([SHARE(E1, D1)], SHARE(E1, D1))
        results = execute_script(script.to_text())
        assert results[0].is_unsat

    def test_quantified_entailment(self):
        consent = PredicateSymbol("consent", (ENTITY,))
        policy = [forall(X, implies(SHARE(X, D1), consent(X))), SHARE(E1, D1)]
        script = compile_validity_script(policy, consent(E1))
        results = execute_script(script.to_text())
        assert results[0].is_unsat

    def test_existential_query(self):
        policy = [SHARE(E1, D1)]
        query = exists(X, SHARE(X, D1))
        results = execute_script(compile_validity_script(policy, query).to_text())
        assert results[0].is_unsat  # somebody shares email: entailed

    def test_push_pop_execution(self):
        text = """
        (set-logic UF)
        (declare-fun p () Bool)
        (assert p)
        (check-sat)
        (push 1)
        (assert (not p))
        (check-sat)
        (pop 1)
        (check-sat)
        """
        results = execute_script(text)
        assert [r.status.value for r in results] == ["sat", "unsat", "sat"]

    def test_check_sat_assuming_execution(self):
        text = """
        (set-logic UF)
        (declare-fun p () Bool)
        (declare-fun q () Bool)
        (assert (=> p q))
        (check-sat-assuming (p (not q)))
        (check-sat-assuming (p))
        """
        results = execute_script(text)
        assert results[0].is_unsat
        assert results[1].is_sat

    def test_equality_theory_via_text(self):
        text = """
        (set-logic UF)
        (declare-sort E 0)
        (declare-const a E)
        (declare-const b E)
        (declare-fun p (E) Bool)
        (assert (= a b))
        (assert (p a))
        (assert (not (p b)))
        (check-sat)
        """
        results = execute_script(text)
        assert results[0].is_unsat


class TestScriptObject:
    def test_comment_rendering(self):
        script = SMTScript()
        script.add(CheckSat(), comment="the check")
        assert "; the check" in script.to_text()

    def test_declare_fun_rendering(self):
        cmd = DeclareFun("share", ("Entity", "Data"), "Bool")
        assert str(cmd) == "(declare-fun share (Entity Data) Bool)"

    def test_declare_const_rendering(self):
        assert str(DeclareConst("a", "Entity")) == "(declare-const a Entity)"

    def test_assert_rendering(self):
        assert str(Assert(["not", "p"])) == "(assert (not p))"


class TestGetModelGetValue:
    def test_get_model_output(self):
        from repro.smtlib import execute_script_verbose

        text = """
        (set-logic UF)
        (declare-fun p () Bool)
        (assert p)
        (check-sat)
        (get-model)
        """
        results, outputs = execute_script_verbose(text)
        assert results[0].is_sat
        assert "(define-fun p () Bool true)" in outputs

    def test_get_value_output(self):
        from repro.smtlib import execute_script_verbose

        text = """
        (set-logic UF)
        (declare-fun p () Bool)
        (declare-fun q () Bool)
        (assert (=> p q))
        (assert p)
        (check-sat)
        (get-value (q))
        """
        _results, outputs = execute_script_verbose(text)
        assert outputs == ["(q true)"]

    def test_get_model_without_sat_answer(self):
        from repro.smtlib import execute_script_verbose

        text = """
        (set-logic UF)
        (declare-fun p () Bool)
        (assert p)
        (assert (not p))
        (check-sat)
        (get-model)
        """
        results, outputs = execute_script_verbose(text)
        assert results[0].is_unsat
        assert outputs == ['(error "no model available")']

    def test_get_model_round_trips_through_parser(self):
        from repro.smtlib import parse_script
        from repro.smtlib.script import GetModel, GetValue

        script = parse_script("(get-model)(get-value (x))")
        assert isinstance(script.commands[0], GetModel)
        assert isinstance(script.commands[1], GetValue)
