"""Process-pool supervision suites: kill matrix, portfolio, backend parity.

Every test that spawns real worker processes ends by asserting the pool
left zero orphans — both by the supervisor's own book-keeping
(:meth:`WorkerSupervisor.live_pids`) and by asking multiprocessing for
surviving children.  Faults are injected *inside* the worker via the
deterministic seams in :mod:`repro.procpool.faults`.
"""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro.core.metrics import PipelineMetrics
from repro.core.pipeline import PipelineConfig, PolicyPipeline
from repro.errors import ExecutionError, QueryCancelledError
from repro.procpool import (
    PortfolioConfig,
    ProcPoolConfig,
    UnitOutcome,
    WorkerCrashReport,
    WorkerSupervisor,
    WorkUnit,
)
from repro.procpool.faults import DIE_EXIT_CODE
from repro.solver.interface import CertificationConfig, SolverBudget
from repro.solver.result import SatResult

pytestmark = pytest.mark.procpool

TRIVIAL_SCRIPT = "(set-logic UF)\n(declare-fun p () Bool)\n(assert p)\n(check-sat)\n"

PARITY_POLICY = """\
TikTak collects your email address for account purposes.
TikTak shares your device information with advertisers.
We do not sell your precise location.
"""

PARITY_QUESTIONS = [
    "Does TikTak collect my email address?",
    "Does TikTak share device information with advertisers?",
    "Does TikTak sell my precise location?",
]


def fast_config(**overrides) -> ProcPoolConfig:
    defaults = dict(
        workers=2,
        heartbeat_interval=0.05,
        stall_after=0.5,
        kill_grace=2.0,
        poll_interval=0.01,
        shutdown_grace=1.0,
    )
    defaults.update(overrides)
    return ProcPoolConfig(**defaults)


def assert_no_orphans(supervisor: WorkerSupervisor) -> None:
    assert supervisor.live_pids() == []
    lingering = [
        p for p in multiprocessing.active_children()
        if p.name.startswith("procpool-worker-")
    ]
    assert lingering == []


def php_script(pigeons: int = 6) -> str:
    """Guarded pigeonhole: PHP(n, n-1) behind a guard variable ``s``.

    ``s`` is declared first, so it is decision variable 1.  Seed 0
    (all-False phases) dives into the ``(not s)`` branch — the classic
    exponentially hard UNSAT pigeonhole — and exhausts a small conflict
    budget; any seed whose hash sets ``s`` True satisfies every clause
    immediately.  Deterministically rescuable, deterministically cheap
    for the rescuers.
    """
    holes = pigeons - 1
    lines = ["(set-logic UF)", "(declare-fun s () Bool)"]

    def var(i: int, j: int) -> str:
        return f"x{i}_{j}"

    for i in range(pigeons):
        for j in range(holes):
            lines.append(f"(declare-fun {var(i, j)} () Bool)")
    for i in range(pigeons):
        lits = " ".join(var(i, j) for j in range(holes))
        lines.append(f"(assert (or s {lits}))")
    for j in range(holes):
        for i in range(pigeons):
            for k in range(i + 1, pigeons):
                lines.append(
                    f"(assert (or s (not {var(i, j)}) (not {var(k, j)})))"
                )
    lines.append("(check-sat)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Round trip & configuration
# ----------------------------------------------------------------------


def test_pool_round_trips_certified_result():
    supervisor = WorkerSupervisor(fast_config())
    try:
        outcome = supervisor.run_unit(
            WorkUnit(
                script_text=TRIVIAL_SCRIPT,
                budget=SolverBudget(),
                certification=CertificationConfig(),
            )
        )
        assert outcome.ok and not outcome.retried and outcome.attempts == 1
        result = outcome.results[-1]
        assert result.status is SatResult.SAT
        assert result.certificate is not None and not result.certificate.failed
    finally:
        supervisor.shutdown()
    assert_no_orphans(supervisor)


def test_workers_are_reused_between_units():
    supervisor = WorkerSupervisor(fast_config(workers=1))
    try:
        for _ in range(3):
            assert supervisor.run_unit(WorkUnit(script_text=TRIVIAL_SCRIPT)).ok
        assert supervisor.stats()["workers_spawned"] == 1
    finally:
        supervisor.shutdown()
    assert_no_orphans(supervisor)


def test_config_validation():
    with pytest.raises(ExecutionError):
        ProcPoolConfig(workers=0)
    with pytest.raises(ExecutionError):
        ProcPoolConfig(stall_after=0.01, heartbeat_interval=0.05)
    with pytest.raises(ExecutionError):
        ProcPoolConfig(start_method="no-such-method")
    with pytest.raises(ExecutionError):
        ProcPoolConfig(max_rss_mb=-1)
    with pytest.raises(ExecutionError):
        PortfolioConfig(seeds=())
    with pytest.raises(ExecutionError):
        PortfolioConfig(seeds=(0, 1))
    with pytest.raises(ExecutionError):
        PortfolioConfig(seeds=(1, 1))
    with pytest.raises(ValueError):
        PipelineConfig(execution_backend="fork-bomb")


def test_shutdown_is_idempotent_and_checkout_after_close_raises():
    supervisor = WorkerSupervisor(fast_config())
    assert supervisor.run_unit(WorkUnit(script_text=TRIVIAL_SCRIPT)).ok
    supervisor.shutdown()
    supervisor.shutdown()
    assert supervisor.closed
    with pytest.raises(ExecutionError):
        supervisor.run_unit(WorkUnit(script_text=TRIVIAL_SCRIPT))
    assert_no_orphans(supervisor)


# ----------------------------------------------------------------------
# Kill matrix
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    ("fault", "kind", "exit_code"),
    [
        ("sigkill", "exit", -9),
        ("die-pre-result", "exit", DIE_EXIT_CODE),
        ("truncated-ipc", "ipc", None),
        ("stall", "stall", None),
    ],
)
def test_kill_matrix_retries_exactly_once_then_surfaces(fault, kind, exit_code):
    supervisor = WorkerSupervisor(fast_config())
    try:
        outcome = supervisor.run_unit(
            WorkUnit(script_text=TRIVIAL_SCRIPT, fault=fault, label=fault)
        )
        assert not outcome.ok
        assert outcome.retried and outcome.attempts == 2
        assert len(outcome.crashes) == 2  # first crash + the retry's crash
        assert all(c.kind == kind for c in outcome.crashes)
        assert outcome.crash is outcome.crashes[-1]
        assert outcome.crash.retried
        if exit_code is not None:
            assert outcome.crash.exit_code == exit_code
        assert fault in outcome.crash.label
        stats = supervisor.stats()
        assert stats["units_retried"] == 1
        assert stats["workers_spawned"] == 2  # each crash burns its worker
        if kind == "stall":
            assert stats["stall_kills"] == 2
    finally:
        supervisor.shutdown()
    assert_no_orphans(supervisor)


def test_crash_report_summary_names_the_failure():
    report = WorkerCrashReport(
        kind="exit", detail="boom", exit_code=-9, worker_pid=123, retried=True
    )
    text = report.summary()
    assert "exit: boom" in text
    assert "exit code -9" in text and "pid 123" in text
    assert "retried once" in text
    assert report.as_dict()["kind"] == "exit"


def test_retry_disabled_surfaces_first_crash():
    supervisor = WorkerSupervisor(fast_config(retry_crashes=False))
    try:
        outcome = supervisor.run_unit(
            WorkUnit(script_text=TRIVIAL_SCRIPT, fault="sigkill")
        )
        assert not outcome.ok
        assert not outcome.retried and outcome.attempts == 1
        assert len(outcome.crashes) == 1 and not outcome.crash.retried
    finally:
        supervisor.shutdown()
    assert_no_orphans(supervisor)


def test_hard_deadline_kills_and_synthesizes_timeout_unknown():
    # The stall fault silences heartbeats and sleeps forever; with the
    # stall threshold out of reach, the hard wall-clock deadline is the
    # watcher that must fire — and deadline kills are never retried.
    supervisor = WorkerSupervisor(fast_config(stall_after=30.0, kill_grace=0.2))
    try:
        outcome = supervisor.run_unit(
            WorkUnit(
                script_text=TRIVIAL_SCRIPT,
                budget=SolverBudget(timeout_seconds=0.2),
                fault="stall",
            )
        )
        assert outcome.ok and outcome.attempts == 1 and outcome.kills == 1
        result = outcome.results[-1]
        assert result.status is SatResult.UNKNOWN
        assert "wall-clock timeout" in result.reason
        assert supervisor.stats()["deadline_kills"] == 1
    finally:
        supervisor.shutdown()
    assert_no_orphans(supervisor)


def test_rss_ceiling_kills_without_retry():
    # A 1 MiB ceiling is below any Python worker's resident set, so the
    # first RSS poll mid-unit kills it; RSS kills never retry (the same
    # unit would deterministically re-exceed the same ceiling).
    supervisor = WorkerSupervisor(fast_config(max_rss_mb=1.0))
    try:
        outcome = supervisor.run_unit(
            WorkUnit(script_text=TRIVIAL_SCRIPT, fault="delay-result")
        )
        assert not outcome.ok
        assert not outcome.retried and outcome.attempts == 1
        assert outcome.crash is not None and outcome.crash.kind == "rss"
        assert "exceeds ceiling" in outcome.crash.detail
        assert supervisor.stats()["rss_kills"] == 1
    finally:
        supervisor.shutdown()
    assert_no_orphans(supervisor)


def test_result_after_kill_race_discards_late_result():
    # delay-result holds the computed answer for 0.3s; cancelling during
    # the delay kills the worker with the result still in flight.  The
    # outcome must come back cancelled (never the stale result), and the
    # pool must stay clean for the next unit.
    supervisor = WorkerSupervisor(fast_config())
    cancel = threading.Event()
    cancel.set()
    try:
        outcome = supervisor.run_unit(
            WorkUnit(script_text=TRIVIAL_SCRIPT, fault="delay-result"),
            cancel=cancel,
        )
        assert outcome.cancelled and not outcome.ok
        assert supervisor.stats()["cancelled_units"] == 1
        follow_up = supervisor.run_unit(WorkUnit(script_text=TRIVIAL_SCRIPT))
        assert follow_up.ok
        assert follow_up.results[-1].status is SatResult.SAT
    finally:
        supervisor.shutdown()
    assert_no_orphans(supervisor)


def test_shutdown_mid_unit_kills_busy_worker():
    supervisor = WorkerSupervisor(fast_config(workers=1))
    done: list[UnitOutcome] = []

    def run() -> None:
        try:
            done.append(
                supervisor.run_unit(
                    WorkUnit(script_text=TRIVIAL_SCRIPT, fault="stall")
                )
            )
        except ExecutionError:
            pass

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    # Wait until the stalled unit is actually on a worker, then pull the
    # plug: the busy worker must die and the unit resolve via the crash
    # path rather than hanging forever.
    import time

    while supervisor.stats()["workers_spawned"] == 0:
        time.sleep(0.01)
    supervisor.shutdown()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert_no_orphans(supervisor)


# ----------------------------------------------------------------------
# Portfolio rescue
# ----------------------------------------------------------------------


def test_portfolio_rescues_budget_exhausted_formula_deterministically():
    script = php_script()
    budget = SolverBudget(max_conflicts=30)
    for _ in range(2):  # whole-race determinism, not a lucky first draw
        supervisor = WorkerSupervisor(fast_config(workers=4))
        try:
            primary = supervisor.run_unit(
                WorkUnit(script_text=script, budget=budget)
            )
            assert primary.ok
            assert primary.results[-1].status is SatResult.UNKNOWN
            assert "budget exhausted" in primary.results[-1].reason

            outcome = supervisor.run_rescued(
                WorkUnit(script_text=script, budget=budget),
                portfolio=PortfolioConfig(),
            )
            assert outcome.ok and outcome.rescued_seed == 1
            result = outcome.results[-1]
            assert result.status is SatResult.SAT
            assert result.certificate is not None
            assert not result.certificate.failed
            assert outcome.attempts >= 2  # primary + at least the winner
            stats = supervisor.stats()
            assert stats["portfolio_races"] == 1
            assert stats["units_rescued"] == 1
        finally:
            supervisor.shutdown()
        assert_no_orphans(supervisor)


def test_portfolio_leaves_decisive_answers_alone():
    supervisor = WorkerSupervisor(fast_config())
    try:
        outcome = supervisor.run_rescued(
            WorkUnit(script_text=TRIVIAL_SCRIPT, budget=SolverBudget()),
            portfolio=PortfolioConfig(),
        )
        assert outcome.ok and outcome.rescued_seed is None
        assert outcome.results[-1].status is SatResult.SAT
        assert supervisor.stats()["portfolio_races"] == 0
    finally:
        supervisor.shutdown()
    assert_no_orphans(supervisor)


# ----------------------------------------------------------------------
# Pipeline wiring: backend parity, cancellation, crash degradation
# ----------------------------------------------------------------------


def _batch_for(backend: str):
    pipeline = PolicyPipeline(
        config=PipelineConfig(
            execution_backend=backend,
            procpool=fast_config() if backend == "process" else None,
        )
    )
    model = pipeline.process(PARITY_POLICY, company="TikTak")
    batch = pipeline.query_batch(model, PARITY_QUESTIONS)
    pipeline.shutdown()
    return pipeline, batch


def test_thread_and_process_backends_produce_byte_identical_reports():
    thread_pipeline, thread_batch = _batch_for("thread")
    process_pipeline, process_batch = _batch_for("process")
    assert_no_orphans_after_pipeline(process_pipeline)

    thread_traces = json.dumps(
        thread_batch.as_dict()["outcomes"], sort_keys=True
    )
    process_traces = json.dumps(
        process_batch.as_dict()["outcomes"], sort_keys=True
    )
    assert thread_traces == process_traces
    # The wire format IS the canonical serialization: the scripts (whose
    # digest keys the verification cache and names quarantine entries)
    # must match byte for byte across backends.
    for thread_outcome, process_outcome in zip(
        thread_batch.succeeded, process_batch.succeeded
    ):
        assert (
            thread_outcome.verification.smtlib_text
            == process_outcome.verification.smtlib_text
        )
        thread_cert = thread_outcome.verification.solver_result.certificate
        process_cert = process_outcome.verification.solver_result.certificate
        assert (thread_cert is None) == (process_cert is None)
        if thread_cert is not None:
            assert thread_cert.as_dict() == process_cert.as_dict()


def assert_no_orphans_after_pipeline(pipeline: PolicyPipeline) -> None:
    assert pipeline.execution_stats() is None  # supervisor reaped
    lingering = [
        p for p in multiprocessing.active_children()
        if p.name.startswith("procpool-worker-")
    ]
    assert lingering == []


def test_process_backend_exposes_pool_stats():
    pipeline = PolicyPipeline(
        config=PipelineConfig(
            execution_backend="process", procpool=fast_config()
        )
    )
    model = pipeline.process(PARITY_POLICY, company="TikTak")
    assert pipeline.execution_stats() is None  # lazy: no pool before a query
    outcome = pipeline.query(model, PARITY_QUESTIONS[0])
    assert not outcome.failed
    stats = pipeline.execution_stats()
    assert stats is not None and stats["units_run"] >= 1
    assert outcome.metrics.procpool_units >= 1
    pipeline.shutdown()
    assert_no_orphans_after_pipeline(pipeline)


def test_cancelled_query_raises_and_never_poisons_the_cache():
    pipeline = PolicyPipeline(
        config=PipelineConfig(
            execution_backend="process", procpool=fast_config()
        )
    )
    model = pipeline.process(PARITY_POLICY, company="TikTak")
    cancel = threading.Event()
    cancel.set()
    with pytest.raises(QueryCancelledError):
        pipeline.query(model, PARITY_QUESTIONS[0], cancel=cancel)
    # The aborted solve must not have been cached: the same question now
    # resolves normally (a poisoned cache would replay the cancellation
    # or a bogus verdict).
    outcome = pipeline.query(model, PARITY_QUESTIONS[0])
    assert not outcome.failed
    assert outcome.metrics.verification_misses == 1
    pipeline.shutdown()
    assert_no_orphans_after_pipeline(pipeline)


def test_worker_crash_degrades_to_unknown_verdict(monkeypatch):
    # The pipeline-side mapping for a twice-crashed unit, exercised via a
    # stub supervisor (the real kill matrix is covered above): the query
    # keeps its slot with an UNKNOWN naming the crash instead of erroring.
    pipeline = PolicyPipeline(
        config=PipelineConfig(execution_backend="process")
    )
    crash = WorkerCrashReport(
        kind="exit", detail="worker exited", exit_code=-9, retried=True
    )

    class StubSupervisor:
        def run_rescued(self, unit, portfolio=None, *, cancel=None):
            return UnitOutcome(
                crash=crash, crashes=[crash, crash],
                retried=True, attempts=2, kills=2,
            )

    monkeypatch.setattr(
        pipeline, "_execution_supervisor", lambda: StubSupervisor()
    )
    model = pipeline.process(PARITY_POLICY, company="TikTak")
    outcome = pipeline.query(model, PARITY_QUESTIONS[0])
    assert outcome.verification.solver_result.status is SatResult.UNKNOWN
    assert "worker crashed" in outcome.verification.solver_result.reason
    assert outcome.metrics.procpool_retries == 1
    assert outcome.metrics.procpool_crashes == 2
    assert outcome.metrics.procpool_kills == 2


def test_worker_side_solver_errors_rethrow_by_type(monkeypatch):
    pipeline = PolicyPipeline(
        config=PipelineConfig(execution_backend="process")
    )

    class StubSupervisor:
        def run_rescued(self, unit, portfolio=None, *, cancel=None):
            return UnitOutcome(error=("SMTLibParseError", "bad token"))

    monkeypatch.setattr(
        pipeline, "_execution_supervisor", lambda: StubSupervisor()
    )
    metrics = PipelineMetrics()
    run_script = pipeline._pooled_run_script(metrics, None)
    from repro.errors import SMTLibParseError

    with pytest.raises(SMTLibParseError, match="bad token"):
        run_script(TRIVIAL_SCRIPT, SolverBudget(), None)

    class UnknownTypeSupervisor:
        def run_rescued(self, unit, portfolio=None, *, cancel=None):
            return UnitOutcome(error=("NoSuchError", "huh"))

    monkeypatch.setattr(
        pipeline, "_execution_supervisor", lambda: UnknownTypeSupervisor()
    )
    run_script = pipeline._pooled_run_script(metrics, None)
    with pytest.raises(ExecutionError, match="NoSuchError: huh"):
        run_script(TRIVIAL_SCRIPT, SolverBudget(), None)
