"""Chaos suite: stall detection, cooperative cancel, worker replacement.

A hung worker must never hang the batch: the watchdog flags the wedged
query, the runner cancels it cooperatively, replaces the worker, and the
slot comes back UNKNOWN with a structured :class:`StallReport` — with
every healthy query's trace untouched and output order preserved.

Detection is exercised two ways: deterministically, with a
:class:`FakeClock` and a manual ``scan_stalls()`` call (zero real
waiting, ``watchdog_thread=False``), and end-to-end through the real
watchdog thread with a sub-second threshold.  Marked ``chaos``: run with
``pytest -m chaos``.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import JobConfig, JobRunner, Verdict
from repro.jobs import StallOutcome, Watchdog
from repro.jobs.faults import FakeClock, HangingQueryFn
from repro.jobs.watchdog import WorkerHeartbeat

pytestmark = pytest.mark.chaos

QUESTIONS = [
    "Acme collects the email address.",
    "Acme shares the usage information with analytics providers.",
    "Acme sells the contact information.",
    "Does Acme collect my name?",
]
HUNG_QUESTION = QUESTIONS[1]
STALL_AFTER = 30.0


def _trace(outcome) -> str:
    return json.dumps(outcome.as_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# Watchdog mechanics (pure, fake-clock)
# ---------------------------------------------------------------------------


class TestWatchdogScan:
    def test_flags_only_overdue_busy_workers(self):
        clock = FakeClock()
        dog = Watchdog(stall_after=10.0, clock=clock)
        fresh, overdue, idle, cancelled = (
            WorkerHeartbeat(1),
            WorkerHeartbeat(2),
            WorkerHeartbeat(3),
            WorkerHeartbeat(4),
        )
        overdue.begin(0, "q0", clock.now())
        cancelled.begin(1, "q1", clock.now())
        cancelled.cancelled.set()
        clock.advance(11.0)
        fresh.begin(2, "q2", clock.now())  # started after the jump
        flagged = dog.scan([fresh, overdue, idle, cancelled], now=clock.now())
        assert flagged == [overdue]

    def test_beat_resets_the_deadline(self):
        clock = FakeClock()
        dog = Watchdog(stall_after=10.0, clock=clock)
        hb = WorkerHeartbeat(1)
        hb.begin(0, "q0", clock.now())
        clock.advance(9.0)
        hb.beat("verify", clock.now())  # cooperative mid-query heartbeat
        clock.advance(9.0)
        assert dog.scan([hb], now=clock.now()) == []
        clock.advance(2.0)
        assert dog.scan([hb], now=clock.now()) == [hb]
        assert hb.stage == "verify"  # the report names the last stage

    def test_exactly_at_threshold_is_not_stalled(self):
        clock = FakeClock()
        dog = Watchdog(stall_after=10.0, clock=clock)
        hb = WorkerHeartbeat(1)
        hb.begin(0, "q0", clock.now())
        clock.advance(10.0)
        assert dog.scan([hb], now=clock.now()) == []

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            Watchdog(stall_after=0.0)

    def test_interval_defaults_to_quarter_threshold(self):
        assert Watchdog(stall_after=8.0).interval == 2.0
        assert Watchdog(stall_after=0.02).interval == 0.01  # floored

    def test_heartbeat_lifecycle(self):
        hb = WorkerHeartbeat(7)
        assert not hb.busy and hb.stage == "idle"
        hb.begin(3, "q3", 5.0)
        assert hb.busy and hb.index == 3 and hb.last_beat == 5.0
        hb.finish()
        assert not hb.busy and hb.index is None


# ---------------------------------------------------------------------------
# Deterministic stall injection (fake clock, manual scan)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def baseline(pipeline, small_model):
    batch = pipeline.query_batch(small_model, QUESTIONS, max_workers=1)
    return [_trace(o) for o in batch.outcomes]


def _run_with_hang(pipeline, small_model, on_hang, **config_kwargs):
    """Run the suite with ``HUNG_QUESTION`` wedged; drive ``on_hang`` once
    the worker is provably stuck.  Returns (result, runner, hanging)."""
    clock = FakeClock()
    hanging = HangingQueryFn(
        pipeline, small_model, hang_questions=(HUNG_QUESTION,)
    )
    config = JobConfig(
        max_workers=1,  # only the hung query is in flight at scan time
        stall_after=STALL_AFTER,
        watchdog_thread=False,
        handle_signals=False,
        **config_kwargs,
    )
    runner = JobRunner(
        pipeline, small_model, config, clock=clock, query_fn=hanging
    )
    box = {}

    def drive():
        box["result"] = runner.run(QUESTIONS)

    thread = threading.Thread(target=drive)
    thread.start()
    assert hanging.hang_started.wait(timeout=10.0), "worker never wedged"
    clock.advance(STALL_AFTER + 1.0)
    on_hang(runner)
    thread.join(timeout=30.0)
    assert not thread.is_alive(), "job hung despite the watchdog"
    return box["result"], runner, hanging


class TestStallInjection:
    def test_hung_worker_detected_replaced_and_batch_completes(
        self, pipeline, small_model, baseline
    ):
        reports = {}

        def scan(runner):
            reports["first"] = runner.scan_stalls()
            reports["second"] = runner.scan_stalls()  # idempotent

        result, runner, hanging = _run_with_hang(pipeline, small_model, scan)

        assert len(reports["first"]) == 1
        assert reports["second"] == []  # a cancelled worker is not re-flagged
        report = reports["first"][0]
        assert report.index == 1
        assert report.question == HUNG_QUESTION
        assert report.waited_seconds > STALL_AFTER
        assert report.stall_after == STALL_AFTER
        assert report.replaced

        # The stalled slot is a structured UNKNOWN, never a silent hang.
        stalled = result.outcomes[1]
        assert isinstance(stalled, StallOutcome)
        assert stalled.verdict is Verdict.UNKNOWN
        assert stalled.stall.as_dict() == report.as_dict()
        assert "stalled" in stalled.summary()

        # Order preserved; every healthy query byte-identical to baseline.
        assert not result.aborted
        assert result.pending == []
        for index in (0, 2, 3):
            assert _trace(result.outcomes[index]) == baseline[index]

        assert result.stalls == [report]
        assert result.metrics.stalled_queries == 1
        assert result.metrics.workers_replaced == 1
        assert hanging.hangs == 1

    def test_cancelled_worker_result_is_discarded(
        self, pipeline, small_model
    ):
        result, runner, hanging = _run_with_hang(
            pipeline, small_model, lambda runner: runner.scan_stalls()
        )
        # The wedged worker observed its cancellation, retired, and its
        # late result did not overwrite the committed StallOutcome.
        assert hanging.cancelled_hangs == 1
        assert isinstance(result.outcomes[1], StallOutcome)

    def test_stall_is_checkpointed_for_resume(
        self, pipeline, small_model, tmp_path
    ):
        result, runner, _ = _run_with_hang(
            pipeline,
            small_model,
            lambda runner: runner.scan_stalls(),
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        assert isinstance(result.outcomes[1], StallOutcome)
        # A resumed job trusts the committed UNKNOWN rather than re-running
        # the pathological query.
        resumed = JobRunner(
            pipeline,
            small_model,
            JobConfig(checkpoint_dir=str(tmp_path / "ckpt")),
        ).resume()
        assert resumed.restored == len(QUESTIONS)
        assert resumed.outcomes[1].as_dict() == result.outcomes[1].as_dict()
        assert resumed.outcomes[1].verdict is Verdict.UNKNOWN

    def test_healthy_workers_never_flagged(self, pipeline, small_model):
        clock = FakeClock()
        runner = JobRunner(
            pipeline,
            small_model,
            JobConfig(
                max_workers=2,
                stall_after=STALL_AFTER,
                watchdog_thread=False,
                handle_signals=False,
            ),
            clock=clock,
        )
        result = runner.run(QUESTIONS)
        assert runner.scan_stalls() == []
        assert result.stalls == []
        assert result.metrics.stalled_queries == 0


# ---------------------------------------------------------------------------
# Real watchdog thread (sub-second threshold, actual waiting)
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestWatchdogThread:
    def test_detects_stall_without_manual_scan(self, pipeline, small_model):
        hanging = HangingQueryFn(
            pipeline, small_model, hang_questions=(HUNG_QUESTION,)
        )
        runner = JobRunner(
            pipeline,
            small_model,
            JobConfig(
                max_workers=1,
                stall_after=0.15,
                watchdog_interval=0.02,
                handle_signals=False,
            ),
            query_fn=hanging,
        )
        result = runner.run(QUESTIONS)  # real clock: the thread must act
        assert len(result.stalls) == 1
        assert result.stalls[0].question == HUNG_QUESTION
        assert isinstance(result.outcomes[1], StallOutcome)
        assert result.pending == []
        assert result.metrics.workers_replaced == 1
