"""Background scrubbing: cursor-driven incremental verification,
admission-aware pausing, and scrub-under-load chaos over real sockets."""

from __future__ import annotations

import json
import threading

import pytest

from repro import PolicyPipeline, PolicyServer, ServerConfig, ServingClient
from repro.core.metrics import PipelineMetrics
from repro.integrity.faults import zero_block
from repro.integrity.scrub import CURSOR_NAME, BackgroundScrubber
from repro.registry import MintSpec, PolicyRegistry
from repro.registry.manifest import read_manifest

pytestmark = pytest.mark.integrity

QUESTION = "The company collects the user's email address."


@pytest.fixture(scope="module")
def scrub_root(pipeline, tmp_path_factory):
    root = tmp_path_factory.mktemp("scrub") / "reg"
    registry = PolicyRegistry(root, pipeline=pipeline)
    report = registry.mint(MintSpec(count=2, seed=41, target_words=(340,)))
    assert len(report.minted) == 2
    return root


def copy_fleet(scrub_root, tmp_path):
    import shutil

    dest = tmp_path / "reg"
    shutil.copytree(scrub_root, dest)
    (dest / CURSOR_NAME).unlink(missing_ok=True)
    return dest


class FakeGate:
    def __init__(self, depth: int = 0) -> None:
        self.depth = depth


def drain_pass(scrubber, max_ticks=64):
    """Tick until a full pass completes; return all findings surfaced."""
    found = []
    start = scrubber.passes
    for _ in range(max_ticks):
        found.extend(scrubber.run_once())
        if scrubber.passes > start:
            return found
    raise AssertionError("scrub pass did not complete within tick budget")


class TestConstruction:
    def test_rejects_non_positive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            BackgroundScrubber(tmp_path, interval=0)

    def test_empty_registry_tick_is_clean(self, tmp_path):
        scrubber = BackgroundScrubber(tmp_path, interval=1.0)
        assert scrubber.run_once() == []
        assert scrubber.snapshots_verified == 0


class TestCursor:
    def test_full_pass_visits_every_snapshot_once(self, scrub_root, tmp_path):
        root = copy_fleet(scrub_root, tmp_path)
        manifest = read_manifest(root)
        scrubber = BackgroundScrubber(root, interval=1.0)
        assert drain_pass(scrubber) == []
        assert scrubber.snapshots_verified == len(manifest.entries)
        assert scrubber.artifacts_verified > 0
        assert scrubber.passes == 1

    def test_cursor_persisted_after_each_tick(self, scrub_root, tmp_path):
        root = copy_fleet(scrub_root, tmp_path)
        scrubber = BackgroundScrubber(root, interval=1.0)
        scrubber.run_once()
        cursor = json.loads((root / CURSOR_NAME).read_text("utf-8"))
        assert cursor["company"] in read_manifest(root).entries
        assert cursor["position"] == 1

    def test_restarted_scrubber_resumes_mid_pass(self, scrub_root, tmp_path):
        root = copy_fleet(scrub_root, tmp_path)
        first = BackgroundScrubber(root, interval=1.0)
        first.run_once()  # verify one snapshot, persist cursor
        resumed = BackgroundScrubber(root, interval=1.0)
        drain_pass(resumed)
        # The resumed instance finishes the pass without re-verifying the
        # snapshot the first instance already covered.
        total = len(read_manifest(root).entries)
        assert first.snapshots_verified + resumed.snapshots_verified == total

    def test_garbage_cursor_resets_to_start(self, scrub_root, tmp_path):
        root = copy_fleet(scrub_root, tmp_path)
        (root / CURSOR_NAME).write_text("not json", encoding="utf-8")
        scrubber = BackgroundScrubber(root, interval=1.0)
        assert drain_pass(scrubber) == []


class TestAdmissionAwareness:
    def test_busy_gate_pauses_tick(self, scrub_root, tmp_path):
        root = copy_fleet(scrub_root, tmp_path)
        metrics = PipelineMetrics()
        scrubber = BackgroundScrubber(
            root, interval=1.0, gate=FakeGate(depth=3), metrics=metrics
        )
        assert scrubber.run_once() == []
        assert scrubber.paused == 1
        assert scrubber.snapshots_verified == 0
        assert metrics.scrub_paused == 1

    def test_idle_gate_lets_tick_proceed(self, scrub_root, tmp_path):
        root = copy_fleet(scrub_root, tmp_path)
        scrubber = BackgroundScrubber(root, interval=1.0, gate=FakeGate(depth=0))
        scrubber.run_once()
        assert scrubber.snapshots_verified == 1
        assert scrubber.paused == 0


class TestDetection:
    def test_injected_corruption_surfaces_finding_and_metrics(
        self, scrub_root, tmp_path
    ):
        root = copy_fleet(scrub_root, tmp_path)
        victim = sorted(root.rglob("embeddings.npz"))[0]
        zero_block(victim)
        metrics = PipelineMetrics()
        scrubber = BackgroundScrubber(root, interval=1.0, metrics=metrics)
        findings = drain_pass(scrubber)
        assert findings, "scrub pass missed injected corruption"
        assert all(f.family == "store" for f in findings)
        assert any(f.detail.startswith("scrub:") for f in findings)
        assert metrics.integrity_findings == len(findings)
        stats = scrubber.stats()
        assert stats["findings"] == len(findings)
        assert stats["recent_findings"]

    def test_unreadable_manifest_is_critical(self, scrub_root, tmp_path):
        root = copy_fleet(scrub_root, tmp_path)
        zero_block(root / "REGISTRY.json")
        scrubber = BackgroundScrubber(root, interval=1.0)
        findings = scrubber.run_once()
        assert len(findings) == 1
        assert findings[0].family == "registry"
        assert str(findings[0].severity) == "critical"


class TestThreadLifecycle:
    def test_start_stop_idempotent(self, scrub_root, tmp_path):
        root = copy_fleet(scrub_root, tmp_path)
        scrubber = BackgroundScrubber(root, interval=0.01)
        scrubber.start()
        scrubber.start()  # no-op
        assert scrubber.stats()["running"]
        scrubber.stop()
        scrubber.stop()  # no-op
        assert not scrubber.stats()["running"]


class TestScrubUnderLoad:
    """Chaos: the scrubber runs inside a live server under concurrent
    query traffic — zero in-flight loss, stats surfaced end to end."""

    def test_serving_with_scrubber_loses_nothing(self, scrub_root, tmp_path):
        root = copy_fleet(scrub_root, tmp_path)
        companies = sorted(read_manifest(root).entries)
        server = PolicyServer(
            ServerConfig(
                root=root,
                port=0,
                max_pending=8,
                default_deadline=10.0,
                handle_signals=False,
                scrub_interval=0.01,
            ),
            pipeline=PolicyPipeline(),
        )
        server.start()
        try:
            assert server.scrubber is not None
            host, port = server.address
            results: list[tuple[int, str]] = []
            lock = threading.Lock()

            def worker(n: int) -> None:
                client = ServingClient(host, port, timeout=10.0)
                try:
                    for i in range(4):
                        status, body = client.query(
                            companies[(n + i) % len(companies)], QUESTION
                        )
                        with lock:
                            results.append((status, body))
                finally:
                    client.close()

            threads = [
                threading.Thread(target=worker, args=(n,)) for n in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert len(results) == 12  # zero in-flight loss
            assert all(status == 200 for status, _ in results)

            stats = server.stats()
            assert stats["scrub"] is not None
            assert stats["scrub"]["interval"] == pytest.approx(0.01)
            assert stats["integrity"]["findings"] >= 0
        finally:
            server.stop()
        # Cursor persisted: a later fsck/scrub resumes where serving left off.
        assert (root / CURSOR_NAME).exists() or server.scrubber.snapshots_verified == 0

    def test_server_without_interval_has_no_scrubber(self, scrub_root, tmp_path):
        root = copy_fleet(scrub_root, tmp_path)
        server = PolicyServer(
            ServerConfig(root=root, port=0, handle_signals=False),
            pipeline=PolicyPipeline(),
        )
        server.start()
        try:
            assert server.scrubber is None
            assert server.stats()["scrub"] is None
        finally:
            server.stop()
