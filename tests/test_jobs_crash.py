"""Crash matrix: kill the job at every journal boundary, then resume.

The checkpoint journal reports its append/fsync steps through the same
:data:`~repro.store.atomic.StepHook` seam as the snapshot store, so the
matrix is *enumerated*, not hand-coded: a recording run captures the full
step schedule (``append:header``, ``sync:header``, ``append:record:i``,
``sync:record:i``, ...), and one test case kills the job at each
boundary.  After every kill, a fresh runner resumes and must produce a
final outcome list byte-identical to an uninterrupted run — and must
never re-execute a query whose record survived the crash.

Single-worker runs pin the journal order to question order, making the
schedule (and therefore the matrix) deterministic.  Marked ``chaos`` and
``crash``: run with ``pytest -m crash``.
"""

from __future__ import annotations

import json

import pytest

from repro import JobConfig, JobRunner
from repro.jobs import read_journal
from repro.jobs.checkpoint import JOURNAL_NAME
from repro.jobs.faults import CountingQueryFn
from repro.store.faults import CrashInjector, SimulatedCrash, kill_points

pytestmark = [pytest.mark.chaos, pytest.mark.crash]

QUESTIONS = [
    "Acme collects the email address.",
    "Acme shares the usage information with analytics providers.",
    "Acme sells the contact information.",
    "Does Acme collect my name?",
]


def _trace(outcome) -> str:
    return json.dumps(outcome.as_dict(), sort_keys=True)


def _config(tmp_path) -> JobConfig:
    return JobConfig(
        max_workers=1,  # pins journal order: the matrix is deterministic
        checkpoint_dir=str(tmp_path / "ckpt"),
        handle_signals=False,
    )


@pytest.fixture(scope="module")
def baseline(pipeline, small_model):
    """Uninterrupted single-worker traces: what every resume must equal."""
    batch = pipeline.query_batch(small_model, QUESTIONS, max_workers=1)
    return [_trace(o) for o in batch.outcomes]


@pytest.fixture(scope="module")
def schedule(pipeline, small_model, tmp_path_factory):
    """The journal's full step schedule, recorded from one clean run."""
    tmp_path = tmp_path_factory.mktemp("schedule")
    injector = CrashInjector()
    runner = JobRunner(
        pipeline, small_model, _config(tmp_path), journal_step=injector
    )
    result = runner.run(QUESTIONS)
    assert result.pending == []
    return list(injector.steps)


class TestSchedule:
    def test_every_record_has_an_append_and_a_sync(self, schedule):
        assert schedule[:2] == ["append:header", "sync:header"]
        for index in range(len(QUESTIONS)):
            assert f"append:record:{index}" in schedule
            assert f"sync:record:{index}" in schedule
        # One kill point per boundary: header + one record per question.
        assert len(schedule) == 2 + 2 * len(QUESTIONS)

    def test_single_worker_order_is_question_order(self, schedule):
        records = [s for s in schedule if s.startswith("append:record:")]
        assert records == [
            f"append:record:{i}" for i in range(len(QUESTIONS))
        ]


class TestKillMatrix:
    def _kill_and_resume(self, pipeline, small_model, tmp_path, step, occurrence):
        """Kill one run at (step, occurrence); resume; return both halves."""
        config = _config(tmp_path)
        injector = CrashInjector(crash_at=step, occurrence=occurrence)
        runner = JobRunner(
            pipeline, small_model, config, journal_step=injector
        )
        with pytest.raises(SimulatedCrash):
            runner.run(QUESTIONS)

        # What the journal can vouch for after the kill is exactly what
        # resume may trust; everything else must be re-executed once.
        recovery = read_journal(tmp_path / "ckpt" / JOURNAL_NAME)
        counting = CountingQueryFn(pipeline, small_model)
        resumed = JobRunner(
            pipeline, small_model, config, query_fn=counting
        ).resume()
        return recovery, counting, resumed

    def test_kill_at_every_journal_boundary_resumes_byte_identical(
        self, pipeline, small_model, tmp_path_factory, schedule, baseline
    ):
        matrix = kill_points(schedule)
        assert len(matrix) == len(schedule)
        for step, occurrence in matrix:
            tmp_path = tmp_path_factory.mktemp("kill")
            recovery, counting, resumed = self._kill_and_resume(
                pipeline, small_model, tmp_path, step, occurrence
            )
            context = f"killed at {step!r} (occurrence {occurrence})"

            if recovery.header is None:
                # Died before the header was durable: nothing to resume
                # from, and resume() must refuse rather than guess.
                assert step in ("append:header", "sync:header"), context
                continue

            committed = set(recovery.completed)
            expected_reruns = {
                i for i in range(len(QUESTIONS)) if i not in committed
            }
            # No query executed twice past its committed record — and
            # every pending one executed exactly once.
            assert counting.by_index == {
                i: 1 for i in sorted(expected_reruns)
            }, context
            assert resumed.restored == len(committed), context
            assert resumed.pending == [], context
            assert not resumed.aborted, context
            assert [_trace(o) for o in resumed.outcomes] == baseline, context

    def test_torn_header_requires_fresh_start(
        self, pipeline, small_model, tmp_path, baseline
    ):
        from repro import JobError

        config = _config(tmp_path)
        injector = CrashInjector(crash_at="append:header")
        with pytest.raises(SimulatedCrash):
            JobRunner(
                pipeline, small_model, config, journal_step=injector
            ).run(QUESTIONS)
        # The append itself is flushed before the hook fires, so model the
        # OS losing the un-fsynced tail: tear the header line in half.
        path = tmp_path / "ckpt" / JOURNAL_NAME
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])

        # The torn header is untrusted; resume() without the suite refuses,
        # with the suite it starts the job from scratch.
        with pytest.raises(JobError):
            JobRunner(pipeline, small_model, config).resume()
        result = JobRunner(pipeline, small_model, config).resume(QUESTIONS)
        assert [_trace(o) for o in result.outcomes] == baseline

    def test_crash_during_resume_then_resume_again(
        self, pipeline, small_model, tmp_path, baseline
    ):
        config = _config(tmp_path)
        # First kill: one record committed.
        with pytest.raises(SimulatedCrash):
            JobRunner(
                pipeline,
                small_model,
                config,
                journal_step=CrashInjector(crash_at="sync:record:0"),
            ).run(QUESTIONS)
        # The resume itself dies one record further in.
        with pytest.raises(SimulatedCrash):
            JobRunner(
                pipeline,
                small_model,
                config,
                journal_step=CrashInjector(crash_at="sync:record:1"),
            ).resume()
        # Second resume completes; records 0 and 1 restored, 2 and 3 run.
        counting = CountingQueryFn(pipeline, small_model)
        result = JobRunner(
            pipeline, small_model, config, query_fn=counting
        ).resume()
        assert counting.by_index == {2: 1, 3: 1}
        assert result.restored == 2
        assert [_trace(o) for o in result.outcomes] == baseline

    def test_records_committed_after_torn_tail_resume_stay_durable(
        self, pipeline, small_model, tmp_path, baseline
    ):
        # Crash-tear-resume-crash-resume: reopening a torn journal must
        # repair the tear first, or the resumed run's appends coalesce
        # onto the fragment and every record it fsync'd falls outside the
        # trusted prefix of the *next* recovery — silently re-losing work
        # the journal claimed was durable.
        config = _config(tmp_path)
        with pytest.raises(SimulatedCrash):
            JobRunner(
                pipeline,
                small_model,
                config,
                journal_step=CrashInjector(crash_at="append:record:1"),
            ).run(QUESTIONS)
        path = tmp_path / "ckpt" / JOURNAL_NAME
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 25])  # the kill tears record 1

        resumed = JobRunner(pipeline, small_model, config).resume()
        assert resumed.restored == 1  # only record 0 survived the tear
        assert [_trace(o) for o in resumed.outcomes] == baseline

        # Everything the resumed run committed must be readable by the
        # next recovery: re-read the journal and resume once more.
        recovery = read_journal(path)
        assert not recovery.torn_tail
        assert sorted(recovery.completed) == list(range(len(QUESTIONS)))
        counting = CountingQueryFn(pipeline, small_model)
        final = JobRunner(
            pipeline, small_model, config, query_fn=counting
        ).resume()
        assert counting.by_index == {}  # nothing re-executed
        assert final.restored == len(QUESTIONS)
        assert [_trace(o) for o in final.outcomes] == baseline

    def test_torn_tail_after_kill_is_recovered(
        self, pipeline, small_model, tmp_path, baseline
    ):
        # A kill can tear the in-flight append: simulate by truncating the
        # journal mid-record after a crash between append and sync.
        config = _config(tmp_path)
        with pytest.raises(SimulatedCrash):
            JobRunner(
                pipeline,
                small_model,
                config,
                journal_step=CrashInjector(crash_at="append:record:2"),
            ).run(QUESTIONS)
        path = tmp_path / "ckpt" / JOURNAL_NAME
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 25])  # tear the final record

        recovery = read_journal(path)
        assert recovery.torn_tail
        assert sorted(recovery.completed) == [0, 1]
        counting = CountingQueryFn(pipeline, small_model)
        result = JobRunner(
            pipeline, small_model, config, query_fn=counting
        ).resume()
        assert counting.by_index == {2: 1, 3: 1}
        assert [_trace(o) for o in result.outcomes] == baseline
