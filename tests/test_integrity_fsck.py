"""Corruption-matrix coverage for the unified fsck scan.

Every deterministic fault from :mod:`repro.integrity.faults`, injected
into every artifact family, must surface at least one typed finding in
that family — the 100%-detection acceptance bar.  Clean fixtures must
scan clean first (no false positives), and layout discovery must find a
mixed workdir's artifacts exactly once.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.core.verify import Verdict
from repro.integrity import classify_root, discover_targets, run_fsck
from repro.integrity.faults import flip_bit, swap_files, truncate_tail, zero_block
from repro.integrity.findings import (
    KIND_CROSS_REF,
    KIND_HASH_MISMATCH,
    KIND_MISSING_REFERENT,
    KIND_ORPHAN,
    KIND_TORN_TAIL,
    Severity,
)
from repro.errors import IntegrityError
from repro.jobs.checkpoint import JOURNAL_NAME, CheckpointJournal
from repro.providers.cassette import cassette_line, sidecar_path
from repro.store.snapshot import SnapshotStore

pytestmark = pytest.mark.integrity


# ---------------------------------------------------------------------------
# Fixture builders: one pristine artifact per family
# ---------------------------------------------------------------------------


def make_store(path, model, *, commits=2) -> SnapshotStore:
    store = SnapshotStore(path)
    for _ in range(commits):
        store.commit(model)
    return store


def make_journal(directory) -> "os.PathLike[str]":
    with CheckpointJournal(directory, fsync=False) as journal:
        journal.write_header(["q0", "q1", "q2"], company="Acme", revision=1)
        for index in range(3):
            journal.append_result(
                index, f"q{index}", "outcome", Verdict.VALID, {"verdict": "VALID"}
            )
    return directory / JOURNAL_NAME


def make_cassette(path) -> None:
    lines = [
        cassette_line(f"prompt number {i}", f"completion number {i}")
        for i in range(4)
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def make_cert_dir(root) -> None:
    text = "(assert true)\n(check-sat)\n"
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    cert = root / f"cert-{digest[:12]}"
    cert.mkdir(parents=True)
    (cert / "formula.smt2").write_text(text, encoding="utf-8")
    (cert / "report.json").write_text(
        json.dumps({"reason": "certification failed", "script_sha256": digest}),
        encoding="utf-8",
    )


# ---------------------------------------------------------------------------
# Clean scans: no false positives
# ---------------------------------------------------------------------------


class TestCleanScans:
    def test_clean_store_scans_clean(self, tmp_path, pipeline, small_model):
        make_store(tmp_path / "store", small_model)
        report = run_fsck(tmp_path / "store")
        assert report.clean, report.summary()
        assert report.scanned["snapshots"] == 2
        assert report.scanned["artifacts"] > 0

    def test_clean_checkpoint_scans_clean(self, tmp_path):
        make_journal(tmp_path)
        report = run_fsck(tmp_path)
        assert report.clean, report.summary()
        assert report.scanned["journal_records"] == 4  # header + 3 outcomes

    def test_clean_cassette_scans_clean(self, tmp_path):
        cassette = tmp_path / "session.jsonl"
        make_cassette(cassette)
        report = run_fsck(cassette)
        assert report.clean, report.summary()
        assert report.scanned["cassette_lines"] == 4

    def test_clean_cert_quarantine_scans_clean(self, tmp_path):
        make_cert_dir(tmp_path)
        report = run_fsck(tmp_path)
        assert report.clean, report.summary()
        assert report.scanned["cert_dirs"] == 1

    def test_missing_root_raises_typed_error(self, tmp_path):
        with pytest.raises(IntegrityError):
            run_fsck(tmp_path / "nope")


# ---------------------------------------------------------------------------
# Layout discovery
# ---------------------------------------------------------------------------


class TestDiscovery:
    def test_classify_each_family(self, tmp_path, small_model):
        make_store(tmp_path / "store", small_model, commits=1)
        make_journal(tmp_path / "ckpt")
        make_cert_dir(tmp_path / "certs")
        cassette = tmp_path / "tape.jsonl"
        make_cassette(cassette)
        assert classify_root(tmp_path / "store") == "store"
        assert classify_root(tmp_path / "ckpt") == "checkpoint"
        assert classify_root(tmp_path / "certs") == "certs"
        assert classify_root(cassette) == "cassette"
        assert classify_root(tmp_path) is None  # plain container

    def test_mixed_workdir_discovers_each_artifact_once(
        self, tmp_path, small_model
    ):
        make_store(tmp_path / "store", small_model, commits=1)
        make_journal(tmp_path / "ckpt")
        make_cert_dir(tmp_path / "certs")
        make_cassette(tmp_path / "tape.jsonl")
        kinds = sorted(kind for kind, _ in discover_targets(tmp_path))
        assert kinds == ["cassette", "certs", "checkpoint", "store"]
        report = run_fsck(tmp_path)
        assert report.clean, report.summary()
        assert report.scanned["stores"] == 1
        assert report.scanned["cassettes"] == 1


# ---------------------------------------------------------------------------
# The corruption matrix: every fault x every family detected
# ---------------------------------------------------------------------------

FAULTS = {
    "flip_bit": lambda p: flip_bit(p),
    # keep_fraction=0.9 guarantees the cut lands inside the final record
    # of line-oriented files (a cut exactly on a line boundary is
    # indistinguishable from a shorter append-only log, by design).
    "truncate_tail": lambda p: truncate_tail(p, keep_fraction=0.9),
    "zero_block": lambda p: zero_block(p),
}

# For REGISTRY.json a mid-file bit flip can be semantically silent (it
# may land in free text), so the registry lane targets structural bytes.
REGISTRY_FAULTS = {
    "flip_bit": lambda p: flip_bit(p, offset=0),
    "truncate_tail": lambda p: truncate_tail(p),
    "zero_block": lambda p: zero_block(p),
}


@pytest.fixture(scope="module")
def fleet_root(pipeline, tmp_path_factory):
    from repro.registry import MintSpec, PolicyRegistry

    root = tmp_path_factory.mktemp("integrity-fleet") / "reg"
    registry = PolicyRegistry(root, pipeline=pipeline)
    report = registry.mint(MintSpec(count=2, seed=31, target_words=(340,)))
    assert len(report.minted) == 2
    return root


def copy_fleet(fleet_root, tmp_path):
    import shutil

    target = tmp_path / "fleet"
    shutil.copytree(fleet_root, target)
    return target


class TestCorruptionMatrix:
    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_store_artifact_fault_detected(
        self, tmp_path, small_model, fault
    ):
        store = make_store(tmp_path / "store", small_model)
        target = store.snapshots_dir / store.current_id() / "graph.json"
        FAULTS[fault](target)
        report = run_fsck(tmp_path / "store")
        assert not report.clean, f"{fault} on graph.json went undetected"
        assert any(f.family == "store" for f in report.findings)
        assert all(f.repairable for f in report.findings)  # older snap survives

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_store_manifest_fault_detected(self, tmp_path, small_model, fault):
        store = make_store(tmp_path / "store", small_model)
        target = store.snapshots_dir / store.current_id() / "MANIFEST.json"
        FAULTS[fault](target)
        report = run_fsck(tmp_path / "store")
        assert not report.clean, f"{fault} on MANIFEST.json went undetected"
        assert any(f.family == "store" for f in report.findings)

    @pytest.mark.parametrize("fault", sorted(REGISTRY_FAULTS))
    def test_registry_manifest_fault_detected(
        self, tmp_path, fleet_root, fault
    ):
        root = copy_fleet(fleet_root, tmp_path)
        REGISTRY_FAULTS[fault](root / "REGISTRY.json")
        report = run_fsck(root)
        assert not report.clean, f"{fault} on REGISTRY.json went undetected"
        critical = [f for f in report.findings if f.family == "registry"]
        assert critical and critical[0].severity is Severity.CRITICAL
        # The member stores are still walked for the rebuild plan.
        assert report.scanned["stores"] == 2

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_checkpoint_fault_detected(self, tmp_path, fault):
        journal = make_journal(tmp_path)
        FAULTS[fault](journal)
        report = run_fsck(tmp_path)
        assert not report.clean, f"{fault} on journal went undetected"
        assert any(f.family == "checkpoint" for f in report.findings)

    def test_checkpoint_torn_tail_classified_warn(self, tmp_path):
        journal = make_journal(tmp_path)
        truncate_tail(journal, keep_fraction=0.98)  # cut inside the last line
        report = run_fsck(tmp_path)
        kinds = {f.kind for f in report.findings}
        assert KIND_TORN_TAIL in kinds
        assert report.max_severity is Severity.WARN

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_cassette_fault_detected(self, tmp_path, fault):
        cassette = tmp_path / "tape.jsonl"
        make_cassette(cassette)
        FAULTS[fault](cassette)
        report = run_fsck(cassette)
        assert not report.clean, f"{fault} on cassette went undetected"
        assert any(f.family == "cassette" for f in report.findings)
        assert all(f.repairable for f in report.findings)

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_cert_evidence_fault_detected(self, tmp_path, fault):
        make_cert_dir(tmp_path)
        target = next(tmp_path.glob("cert-*")) / "formula.smt2"
        FAULTS[fault](target)
        report = run_fsck(tmp_path)
        assert not report.clean, f"{fault} on formula.smt2 went undetected"
        finding = report.findings[0]
        assert finding.family == "certs"
        assert not finding.repairable  # evidence is never patched back

    def test_swapped_artifacts_within_snapshot_detected(
        self, tmp_path, small_model
    ):
        store = make_store(tmp_path / "store", small_model)
        snap = store.snapshots_dir / store.current_id()
        swap_files(snap / "graph.json", snap / "practices.json")
        report = run_fsck(tmp_path / "store")
        mismatches = [
            f for f in report.findings if f.kind == KIND_HASH_MISMATCH
        ]
        assert len(mismatches) >= 2  # both sides fail their digests

    def test_swapped_snapshot_directories_detected(
        self, tmp_path, pipeline, small_model, small_policy_text
    ):
        # Two snapshots with different content, then swap the directories:
        # every file still hashes clean against its local manifest, so
        # only the identity cross-reference can see it.
        store = SnapshotStore(tmp_path / "store")
        store.commit(small_model)
        updated = pipeline.process(small_policy_text + "\nWe may share data.")
        store.commit(updated)
        a, b = store.snapshot_ids()
        tmp = store.snapshots_dir / "swap-tmp"
        os.rename(store.snapshots_dir / a, tmp)
        os.rename(store.snapshots_dir / b, store.snapshots_dir / a)
        os.rename(tmp, store.snapshots_dir / b)
        report = run_fsck(tmp_path / "store")
        assert any(f.kind == KIND_CROSS_REF for f in report.findings)

    def test_swapped_store_directories_detected(self, tmp_path, fleet_root):
        root = copy_fleet(fleet_root, tmp_path)
        stores = sorted(
            d for d in (root / "shards").rglob("CURRENT")
        )
        assert len(stores) == 2
        swap_a, swap_b = stores[0].parent, stores[1].parent
        tmp = root / "swap-tmp"
        os.rename(swap_a, tmp)
        os.rename(swap_b, swap_a)
        os.rename(tmp, swap_b)
        report = run_fsck(root)
        cross = [f for f in report.findings if f.kind == KIND_CROSS_REF]
        assert cross, "swapped store directories went undetected"
        assert any("routes" in f.detail for f in cross)

    def test_dangling_registry_entry_detected(self, tmp_path, fleet_root):
        import shutil

        root = copy_fleet(fleet_root, tmp_path)
        victim = sorted((root / "shards").rglob("CURRENT"))[0].parent
        shutil.rmtree(victim)
        report = run_fsck(root)
        assert any(
            f.kind == KIND_MISSING_REFERENT and f.family == "registry"
            for f in report.findings
        )

    def test_orphan_store_detected(self, tmp_path, fleet_root):
        root = copy_fleet(fleet_root, tmp_path)
        manifest_path = root / "REGISTRY.json"
        payload = json.loads(manifest_path.read_text("utf-8"))
        dropped = sorted(payload["companies"])[0]
        del payload["companies"][dropped]
        manifest_path.write_text(json.dumps(payload), encoding="utf-8")
        report = run_fsck(root)
        orphans = [f for f in report.findings if f.kind == KIND_ORPHAN]
        assert orphans and orphans[0].family == "registry"

    def test_stale_sidecar_detected(self, tmp_path):
        cassette = tmp_path / "tape.jsonl"
        make_cassette(cassette)
        sidecar_path(cassette).write_text(
            json.dumps({"v": 1, "skipped": [{"line_number": 2, "reason": "x"}]}),
            encoding="utf-8",
        )
        report = run_fsck(cassette)
        assert any(f.kind == "stale-sidecar" for f in report.findings)
