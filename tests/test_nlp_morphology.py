"""Unit tests for verb lemmatization and noun singularization."""

import pytest

from repro.nlp.morphology import (
    lemmatize_verb,
    singularize_noun,
    singularize_phrase,
)


class TestLemmatizeVerb:
    @pytest.mark.parametrize(
        "surface,base",
        [
            ("collects", "collect"),
            ("shares", "share"),
            ("uses", "use"),
            ("discloses", "disclose"),
            ("processes", "process"),
            ("stores", "store"),
            ("collecting", "collect"),
            ("sharing", "share"),
            ("using", "use"),
            ("storing", "store"),
            ("logging", "log"),
            ("collected", "collect"),
            ("shared", "share"),
            ("provided", "provide"),
            ("chose", "choose"),
            ("gave", "give"),
            ("made", "make"),
            ("sold", "sell"),
            ("kept", "keep"),
            ("sent", "send"),
            ("applies", "apply"),
            ("notified", "notify"),
        ],
    )
    def test_inflections(self, surface, base):
        assert lemmatize_verb(surface) == base

    def test_base_form_unchanged(self):
        assert lemmatize_verb("collect") == "collect"

    def test_case_insensitive(self):
        assert lemmatize_verb("Collects") == "collect"

    def test_short_words_untouched(self):
        assert lemmatize_verb("is") == "be"
        assert lemmatize_verb("as") == "as"


class TestSingularizeNoun:
    @pytest.mark.parametrize(
        "plural,singular",
        [
            ("addresses", "address"),
            ("purposes", "purpose"),
            ("cookies", "cookie"),
            ("parties", "party"),
            ("devices", "device"),
            ("numbers", "number"),
            ("emails", "email"),
            ("children", "child"),
            ("people", "person"),
            ("analyses", "analysis"),
            ("purchases", "purchase"),
            ("identifiers", "identifier"),
            ("photos", "photo"),
        ],
    )
    def test_plurals(self, plural, singular):
        assert singularize_noun(plural) == singular

    @pytest.mark.parametrize(
        "word", ["data", "information", "media", "analytics", "status", "gps", "news"]
    )
    def test_uncountable_and_false_plurals(self, word):
        assert singularize_noun(word) == word

    def test_singular_unchanged(self):
        assert singularize_noun("address") == "address"


class TestSingularizePhrase:
    def test_head_noun_singularized(self):
        assert singularize_phrase("email addresses") == "email address"

    def test_of_phrase_head(self):
        assert singularize_phrase("phone numbers of contacts") == "phone number of contacts"

    def test_single_word(self):
        assert singularize_phrase("cookies") == "cookie"

    def test_empty(self):
        assert singularize_phrase("") == ""

    def test_modifiers_untouched(self):
        assert singularize_phrase("social media accounts") == "social media account"
