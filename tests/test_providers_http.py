"""HTTP provider: error taxonomy, throttling, env gating, transports.

Everything runs against in-process fake transports — the autouse network
guard in conftest.py guarantees nothing here (or anywhere in tier-1)
reaches a real network.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    PermanentHTTPError,
    ProviderError,
    RateLimitError,
    TransientHTTPError,
)
from repro.llm.client import UsageStats
from repro.providers import HTTPProvider, TokenBucket, parse_retry_after
from repro.providers.http import ENV_MODEL, ENV_RPS, ENV_TIMEOUT, ENV_URL
from repro.resilience import RetryingLLM, RetryPolicy

pytestmark = pytest.mark.providers

URL = "http://provider.invalid/v1/complete"


class FakeTransport:
    """Scripted (status, headers, body) responses, one per call."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.calls = []

    def __call__(self, url, body, headers, timeout):
        self.calls.append(
            {
                "url": url,
                "body": json.loads(body.decode("utf-8")),
                "headers": headers,
                "timeout": timeout,
            }
        )
        response = self.responses.pop(0)
        if isinstance(response, Exception):
            raise response
        status, headers, doc = response
        return status, headers, json.dumps(doc).encode("utf-8")


def ok(completion="hello"):
    return 200, {}, {"completion": completion}


class TestRetryAfterParsing:
    def test_delta_seconds(self):
        assert parse_retry_after("2.5") == 2.5
        assert parse_retry_after(" 7 ") == 7.0

    def test_garbage_and_dates_degrade_to_none(self):
        assert parse_retry_after(None) is None
        assert parse_retry_after("Wed, 21 Oct 2026 07:28:00 GMT") is None
        assert parse_retry_after("-3") is None


class TestHTTPProvider:
    def test_happy_path_and_request_shape(self):
        transport = FakeTransport([ok("the completion")])
        provider = HTTPProvider(
            URL, model="quagmire-1", api_key="sk-test", transport=transport
        )
        assert provider.complete("a prompt") == "the completion"
        call = transport.calls[0]
        assert call["url"] == URL
        assert call["body"] == {"model": "quagmire-1", "prompt": "a prompt"}
        assert call["headers"]["Authorization"] == "Bearer sk-test"
        assert call["headers"]["Content-Type"] == "application/json"
        assert call["timeout"] == provider.timeout_seconds
        assert provider.stats.provider_calls == 1

    def test_openai_style_responses_accepted(self):
        transport = FakeTransport(
            [
                (200, {}, {"choices": [{"text": "legacy"}]}),
                (200, {}, {"choices": [{"message": {"content": "chat"}}]}),
            ]
        )
        provider = HTTPProvider(URL, transport=transport)
        assert provider.complete("p1") == "legacy"
        assert provider.complete("p2") == "chat"

    def test_429_maps_to_rate_limit_with_retry_after(self):
        transport = FakeTransport([(429, {"retry-after": "1.5"}, {})])
        provider = HTTPProvider(URL, transport=transport)
        with pytest.raises(RateLimitError) as excinfo:
            provider.complete("p")
        assert excinfo.value.retry_after == 1.5
        assert excinfo.value.status == 429
        assert provider.stats.provider_rate_limited == 1

    @pytest.mark.parametrize("status", [408, 500, 502, 503])
    def test_transient_statuses(self, status):
        provider = HTTPProvider(
            URL, transport=FakeTransport([(status, {}, {"error": "x"})])
        )
        with pytest.raises(TransientHTTPError) as excinfo:
            provider.complete("p")
        assert excinfo.value.status == status

    @pytest.mark.parametrize("status", [400, 401, 403, 404, 422])
    def test_permanent_statuses(self, status):
        provider = HTTPProvider(
            URL, transport=FakeTransport([(status, {}, {"error": "x"})])
        )
        with pytest.raises(PermanentHTTPError) as excinfo:
            provider.complete("p")
        assert excinfo.value.status == status

    def test_transport_oserror_is_transient(self):
        provider = HTTPProvider(
            URL, transport=FakeTransport([ConnectionResetError("peer reset")])
        )
        with pytest.raises(TransientHTTPError):
            provider.complete("p")

    def test_unparseable_200_body_is_transient(self):
        class GarbageTransport:
            def __call__(self, url, body, headers, timeout):
                return 200, {}, b"\x00not json"

        provider = HTTPProvider(URL, transport=GarbageTransport())
        with pytest.raises(TransientHTTPError):
            provider.complete("p")

    def test_200_without_completion_field_is_transient(self):
        provider = HTTPProvider(URL, transport=FakeTransport([(200, {}, {"a": 1})]))
        with pytest.raises(TransientHTTPError):
            provider.complete("p")

    def test_taxonomy_composes_with_retry_policy(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientHTTPError("x"))
        assert policy.is_retryable(RateLimitError("x"))
        assert not policy.is_retryable(PermanentHTTPError("x"))

    def test_retrying_llm_rescues_transient_and_refuses_permanent(self):
        transport = FakeTransport([(503, {}, {}), ok("recovered")])
        provider = HTTPProvider(URL, transport=transport)
        stats = UsageStats()
        retrying = RetryingLLM(provider, stats=stats, sleep=lambda _s: None)
        assert retrying.complete("p") == "recovered"
        assert stats.retries == 1

        transport = FakeTransport([(401, {}, {}), ok("never reached")])
        retrying = RetryingLLM(
            HTTPProvider(URL, transport=transport), sleep=lambda _s: None
        )
        with pytest.raises(PermanentHTTPError):
            retrying.complete("p")
        assert len(transport.responses) == 1  # the 200 was never consumed


class TestEnvGating:
    def test_is_configured(self):
        assert not HTTPProvider.is_configured({})
        assert HTTPProvider.is_configured({ENV_URL: URL})

    def test_from_env_without_url_raises(self):
        with pytest.raises(ProviderError):
            HTTPProvider.from_env({})

    def test_from_env_reads_all_knobs(self):
        provider = HTTPProvider.from_env(
            {
                ENV_URL: URL,
                ENV_MODEL: "m-2",
                ENV_TIMEOUT: "5.5",
                ENV_RPS: "10",
            },
            transport=FakeTransport([ok()]),
        )
        assert provider.url == URL
        assert provider.model == "m-2"
        assert provider.timeout_seconds == 5.5
        assert provider._bucket is not None

    def test_from_env_rejects_bad_numbers(self):
        with pytest.raises(ProviderError):
            HTTPProvider.from_env({ENV_URL: URL, ENV_TIMEOUT: "soon"})
        with pytest.raises(ProviderError):
            HTTPProvider.from_env({ENV_URL: URL, ENV_RPS: "fast"})


class FakeTime:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_throttle(self):
        ft = FakeTime()
        bucket = TokenBucket(2.0, burst=2.0, clock=ft.clock, sleep=ft.sleep)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        # Bucket empty: the third request waits for one token at 2/s.
        assert bucket.acquire() == pytest.approx(0.5)
        assert ft.sleeps == [pytest.approx(0.5)]

    def test_refill_caps_at_burst(self):
        ft = FakeTime()
        bucket = TokenBucket(1.0, burst=3.0, clock=ft.clock, sleep=ft.sleep)
        for _ in range(3):
            bucket.acquire()
        ft.now += 100.0  # long idle: refills to burst, not to 100 tokens
        for _ in range(3):
            assert bucket.acquire() == 0.0
        assert bucket.acquire() == pytest.approx(1.0)

    def test_try_acquire_never_blocks(self):
        ft = FakeTime()
        bucket = TokenBucket(1.0, burst=1.0, clock=ft.clock, sleep=ft.sleep)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        assert ft.sleeps == []

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, burst=0.5)

    def test_provider_throttles_before_sending(self):
        ft = FakeTime()
        transport = FakeTransport([ok(), ok(), ok()])
        provider = HTTPProvider(URL, requests_per_second=1.0, burst=1.0, transport=transport)
        # Swap the bucket's time sources for the fake (constructor seam is
        # rate/burst only; the bucket owns its clock).
        provider._bucket = TokenBucket(1.0, burst=1.0, clock=ft.clock, sleep=ft.sleep)
        for prompt in ("a", "b", "c"):
            provider.complete(prompt)
        assert len(ft.sleeps) == 2  # first rode the burst, rest throttled
