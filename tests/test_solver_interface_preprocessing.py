"""Tests for the preprocessing-enabled solver path and its soundness."""

import random

import pytest

from repro.fol import (
    DATA,
    ENTITY,
    And,
    Constant,
    Implies,
    Not,
    Or,
    PredicateSymbol,
    Variable,
    forall,
    implies,
    negate,
)
from repro.solver import SatResult, Solver

E1 = Constant("tiktak", ENTITY)
D1 = Constant("email", DATA)
SHARE = PredicateSymbol("share", (ENTITY, DATA))
CONSENT = PredicateSymbol("consent", (DATA,))


class TestPreprocessingPath:
    def test_entailment_still_unsat(self):
        solver = Solver(enable_preprocessing=True)
        solver.assert_formula(implies(SHARE(E1, D1), CONSENT(D1)))
        solver.assert_formula(SHARE(E1, D1))
        solver.assert_formula(negate(CONSENT(D1)))
        assert solver.check_sat().is_unsat

    def test_model_values_preserved(self):
        solver = Solver(enable_preprocessing=True)
        solver.assert_formula(SHARE(E1, D1))
        result = solver.check_sat()
        assert result.is_sat
        assert result.model["share(tiktak,email)"] is True

    def test_root_conflict_detected_by_preprocessing(self):
        solver = Solver(enable_preprocessing=True)
        solver.assert_formula(SHARE(E1, D1))
        solver.assert_formula(negate(SHARE(E1, D1)))
        assert solver.check_sat().is_unsat

    def test_quantified_formulas_preprocessed(self):
        solver = Solver(enable_preprocessing=True)
        x = Variable("x", DATA)
        solver.declare_constant(D1)
        solver.assert_formula(forall(x, implies(SHARE(E1, x), CONSENT(x))))
        solver.assert_formula(SHARE(E1, D1))
        solver.assert_formula(negate(CONSENT(D1)))
        assert solver.check_sat().is_unsat

    def test_assumptions_on_named_atoms_sound(self):
        # Named atoms are protected from pure-literal elimination, so
        # assuming their negation after preprocessing must stay correct.
        solver = Solver(enable_preprocessing=True)
        solver.assert_formula(implies(SHARE(E1, D1), CONSENT(D1)))
        assert solver.check_sat_assuming(
            [SHARE(E1, D1), negate(CONSENT(D1))]
        ).is_unsat
        assert solver.check_sat_assuming([SHARE(E1, D1)]).is_sat

    def test_push_pop_with_preprocessing(self):
        solver = Solver(enable_preprocessing=True)
        solver.assert_formula(SHARE(E1, D1))
        solver.push()
        solver.assert_formula(negate(SHARE(E1, D1)))
        assert solver.check_sat().is_unsat
        solver.pop()
        assert solver.check_sat().is_sat

    def test_randomized_agreement_with_plain_solver(self):
        atoms = [PredicateSymbol(f"q{i}")() for i in range(4)]
        rng = random.Random(17)

        def rand_formula(depth=0):
            if depth > 2 or rng.random() < 0.4:
                atom = rng.choice(atoms)
                return Not(atom) if rng.random() < 0.5 else atom
            a, b = rand_formula(depth + 1), rand_formula(depth + 1)
            return [And((a, b)), Or((a, b)), Implies(a, b)][rng.randrange(3)]

        for _ in range(120):
            formulas = [rand_formula() for _ in range(rng.randint(1, 5))]
            plain, pre = Solver(), Solver(enable_preprocessing=True)
            for f in formulas:
                plain.assert_formula(f)
                pre.assert_formula(f)
            assert plain.check_sat().status == pre.check_sat().status
