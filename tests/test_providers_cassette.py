"""Cassette record/replay: round-trips, integrity, strict misses.

The satellite contract: corrupt/truncated cassette lines are skipped
with a structured report (never crash replay), record→replay round-trips
are byte-identical across worker counts, and strict replay raises a
typed :class:`CassetteMissError` on unknown prompts.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import CassetteMissError
from repro.llm.client import CachedLLM, prompt_fingerprint
from repro.llm.simulated import SimulatedLLM
from repro.providers import (
    RecordingLLM,
    ReplayLLM,
    cassette_line,
    load_cassette,
)

pytestmark = pytest.mark.providers


class CountingLLM:
    """Echo backend that counts how many completions it actually served."""

    def __init__(self):
        self.calls = 0

    def complete(self, prompt: str) -> str:
        self.calls += 1
        return f"completion::{prompt}"


class TestRecording:
    def test_records_every_distinct_prompt_once(self, tmp_path):
        path = tmp_path / "tape.jsonl"
        backend = CountingLLM()
        with RecordingLLM(backend, path) as recorder:
            for prompt in ("a", "b", "a", "c", "b"):
                assert recorder.complete(prompt) == f"completion::{prompt}"
        table, report = load_cassette(path)
        assert len(table) == 3
        assert report.skipped == []
        assert recorder.stats.cassette_records == 3
        assert backend.calls == 5  # recording does not cache

    def test_append_extends_existing_cassette(self, tmp_path):
        path = tmp_path / "tape.jsonl"
        with RecordingLLM(CountingLLM(), path) as recorder:
            recorder.complete("a")
        with RecordingLLM(CountingLLM(), path) as recorder:
            recorder.complete("a")  # already on tape: not re-appended
            recorder.complete("b")
        table, report = load_cassette(path)
        assert len(table) == 2
        assert report.duplicates == 0

    def test_concurrent_recording_dedups(self, tmp_path):
        path = tmp_path / "tape.jsonl"
        prompts = [f"prompt-{i % 4}" for i in range(32)]
        with RecordingLLM(CountingLLM(), path) as recorder:
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(recorder.complete, prompts))
        assert results == [f"completion::{p}" for p in prompts]
        table, report = load_cassette(path)
        assert len(table) == 4
        assert report.skipped == []


class TestReplay:
    def test_round_trip_is_exact(self, tmp_path):
        path = tmp_path / "tape.jsonl"
        with RecordingLLM(CountingLLM(), path) as recorder:
            recorded = {p: recorder.complete(p) for p in ("x", "y", "z")}
        replay = ReplayLLM(path)
        for prompt, completion in recorded.items():
            assert replay.complete(prompt) == completion
        assert replay.stats.cassette_replays == 3
        assert replay.stats.cassette_misses == 0

    def test_strict_miss_raises_typed_error_with_digest(self, tmp_path):
        path = tmp_path / "tape.jsonl"
        with RecordingLLM(CountingLLM(), path) as recorder:
            recorder.complete("known")
        replay = ReplayLLM(path, strict=True)
        with pytest.raises(CassetteMissError) as excinfo:
            replay.complete("never recorded")
        assert excinfo.value.prompt_digest == prompt_fingerprint("never recorded")
        assert replay.stats.cassette_misses == 1

    def test_missing_file_is_an_empty_cassette(self, tmp_path):
        replay = ReplayLLM(tmp_path / "nope.jsonl")
        assert len(replay) == 0
        with pytest.raises(CassetteMissError):
            replay.complete("anything")

    def test_fallback_serves_misses(self, tmp_path):
        path = tmp_path / "tape.jsonl"
        with RecordingLLM(CountingLLM(), path) as recorder:
            recorder.complete("on tape")
        backend = CountingLLM()
        replay = ReplayLLM(path, fallback=backend)
        assert replay.complete("on tape") == "completion::on tape"
        assert backend.calls == 0
        assert replay.complete("fresh") == "completion::fresh"
        assert backend.calls == 1


class TestIntegrity:
    def _write(self, path, lines):
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_corrupt_lines_skipped_with_structured_report(self, tmp_path):
        path = tmp_path / "tape.jsonl"
        good = cassette_line("good prompt", "good completion")
        tampered = good.replace("good completion", "evil completion")
        self._write(
            path,
            [
                good,
                "{not json at all",
                tampered,  # checksum no longer matches
                json.dumps({"sha256": "abc"}),  # missing record
                json.dumps([1, 2, 3]),  # not an object
            ],
        )
        table, report = load_cassette(path)
        assert len(table) == 1
        assert table[prompt_fingerprint("good prompt")] == "good completion"
        assert report.entries == 1
        assert [s.line_number for s in report.skipped] == [2, 3, 4, 5]
        reasons = [s.reason for s in report.skipped]
        assert any("JSON" in r for r in reasons)
        assert any("checksum" in r for r in reasons)
        # The report serializes for operational surfacing.
        assert report.as_dict()["entries"] == 1
        assert len(report.as_dict()["skipped"]) == 4

    def test_torn_tail_never_crashes_replay(self, tmp_path):
        path = tmp_path / "tape.jsonl"
        good = cassette_line("kept", "kept completion")
        torn = cassette_line("torn", "torn completion")[:25]
        path.write_text(good + "\n" + torn, encoding="utf-8")
        replay = ReplayLLM(path)
        assert replay.complete("kept") == "kept completion"
        assert len(replay.report.skipped) == 1

    def test_digest_prompt_mismatch_is_skipped(self, tmp_path):
        path = tmp_path / "tape.jsonl"
        # Re-envelope a record whose digest names a different prompt: the
        # checksum is valid but the content-addressing is a lie.
        import hashlib

        record = {
            "v": 1,
            "digest": prompt_fingerprint("other prompt"),
            "prompt": "this prompt",
            "completion": "c",
        }
        payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
        line = json.dumps(
            {
                "sha256": hashlib.sha256(payload.encode()).hexdigest(),
                "record": record,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        self._write(path, [line])
        table, report = load_cassette(path)
        assert table == {}
        assert report.skipped[0].reason == "digest does not match prompt"

    def test_duplicate_digests_first_wins(self, tmp_path):
        path = tmp_path / "tape.jsonl"
        self._write(
            path,
            [cassette_line("p", "first"), cassette_line("p", "second")],
        )
        table, report = load_cassette(path)
        assert table[prompt_fingerprint("p")] == "first"
        assert report.duplicates == 1


class TestRoundTripAcrossWorkerCounts:
    """Record once, replay at several worker counts: identical bytes."""

    PROMPTS = [f"distinct prompt number {i}" for i in range(12)]

    def test_replay_identical_at_1_2_8_workers(self, tmp_path):
        path = tmp_path / "tape.jsonl"
        with RecordingLLM(CountingLLM(), path) as recorder:
            recorded = [recorder.complete(p) for p in self.PROMPTS]
        baseline = json.dumps(recorded, sort_keys=True)
        for workers in (1, 2, 8):
            replay = CachedLLM(ReplayLLM(path, strict=True))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(replay.complete, self.PROMPTS))
            assert json.dumps(results, sort_keys=True) == baseline
