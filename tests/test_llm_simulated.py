"""Unit tests for the simulated LLM's task handlers."""

import json

import pytest

from repro.errors import LLMError
from repro.llm.simulated import (
    SimulatedLLM,
    extract_practices,
    resolve_first_person,
    terms_equivalent,
)
from repro.llm.tasks import TaskRunner


@pytest.fixture(scope="module")
def runner():
    return TaskRunner(SimulatedLLM())


class TestCompanyName:
    def test_privacy_policy_heading(self, runner):
        assert runner.extract_company_name("TikTak Privacy Policy. We care.") == "TikTak"

    def test_quoted_we_pattern(self, runner):
        text = 'Welcome! Streamly ("we", "us") values privacy.'
        assert runner.extract_company_name(text) == "Streamly"

    def test_welcome_to_pattern(self, runner):
        assert runner.extract_company_name("Welcome to Acme and its services.") == "Acme"

    def test_inc_suffix(self, runner):
        assert runner.extract_company_name("This policy covers Grobly, Inc. only.") == "Grobly"

    def test_multiword_company(self, runner):
        name = runner.extract_company_name("Blue River Privacy Policy.")
        assert name == "Blue River"

    def test_fallback_capitalized_token(self, runner):
        name = runner.extract_company_name(
            "This policy describes how Zorble handles your data."
        )
        assert name == "Zorble"


class TestCoreference:
    def test_we_replaced(self):
        assert resolve_first_person("We collect data", "Acme") == "Acme collect data"

    def test_our_becomes_possessive(self):
        assert resolve_first_person("our partners", "Acme") == "Acme's partners"

    def test_us_replaced(self):
        assert resolve_first_person("contact us", "Acme") == "contact Acme"

    def test_uppercase_us_country_untouched(self):
        resolved = resolve_first_person("stored in the US region", "Acme")
        assert "US region" in resolved

    def test_user_words_untouched(self):
        resolved = resolve_first_person("We collect your data", "Acme")
        assert "your data" in resolved

    def test_runner_interface(self, runner):
        resolved = runner.resolve_coreferences("We love our users", "Acme")
        assert resolved == "Acme love Acme's users"


class TestExtractPractices:
    def test_simple_collection(self):
        practices = extract_practices("Acme collects your email address.", "Acme")
        assert len(practices) == 1
        p = practices[0]
        assert p["sender"] == "Acme"
        assert p["action"] == "collect"
        assert p["data_type"] == "email address"
        assert p["permission"] is True

    def test_negation_sets_permission_false(self):
        practices = extract_practices(
            "Acme does not sell your personal information.", "Acme"
        )
        assert practices
        assert all(p["permission"] is False for p in practices)

    def test_not_limited_to_is_not_negation(self):
        practices = extract_practices(
            "Acme collects data including but not limited to email.", "Acme"
        )
        assert any(p["permission"] for p in practices)

    def test_enumeration_expansion(self):
        practices = extract_practices(
            "You may provide your name, age, and email address.", "Acme"
        )
        types = {p["data_type"] for p in practices}
        assert {"name", "age", "email address"} <= types

    def test_coordinated_verbs_share_object(self):
        practices = extract_practices(
            "Acme will access and collect contact information.", "Acme"
        )
        actions = {p["action"] for p in practices}
        assert actions == {"access", "collect"}

    def test_condition_attached(self):
        practices = extract_practices(
            "If you enable syncing, Acme collects your contact list.", "Acme"
        )
        conditional = [p for p in practices if p["action"] == "collect"]
        assert conditional
        assert "enable syncing" in conditional[0]["condition"]

    def test_receiver_extracted_for_sharing(self):
        practices = extract_practices(
            "Acme shares your usage information with advertisers.", "Acme"
        )
        assert practices[0]["receiver"] == "advertisers"

    def test_receiver_not_taken_from_other_clause(self):
        practices = extract_practices(
            "You use the platform and Acme collects usage information.", "Acme"
        )
        collect = [p for p in practices if p["action"] == "collect"]
        assert collect and collect[0]["receiver"] is None

    def test_receive_from_swaps_roles(self):
        practices = extract_practices(
            "Acme receives demographic information from data brokers.", "Acme"
        )
        assert practices[0]["sender"] == "data brokers"
        assert practices[0]["receiver"] == "Acme"

    def test_collect_from_device_strips_source(self):
        practices = extract_practices(
            "Acme automatically collects battery level from your device.", "Acme"
        )
        assert practices[0]["data_type"] == "battery level"

    def test_user_sender_detected(self):
        practices = extract_practices("You upload videos to the platform.", "Acme")
        assert practices[0]["sender"] == "user"

    def test_subject_always_user(self):
        practices = extract_practices("Acme collects your email.", "Acme")
        assert practices[0]["subject"] == "user"

    def test_verbless_enumeration_fallback(self):
        practices = extract_practices(
            "Account information, such as username and password.", "Acme"
        )
        assert {p["data_type"] for p in practices} >= {"username", "password"}
        assert all(p["action"] == "provide" for p in practices)

    def test_deduplication(self):
        practices = extract_practices(
            "Acme collects email. Acme collects email.", "Acme"
        )
        assert len(practices) == 1

    def test_empty_statement(self):
        assert extract_practices("", "Acme") == []

    def test_condition_clause_user_actions_extracted(self):
        practices = extract_practices(
            "When you create an account, Acme collects your email.", "Acme"
        )
        actions = {(p["sender"], p["action"]) for p in practices}
        assert ("user", "create") in actions
        assert ("Acme", "collect") in actions


class TestTermsEquivalent:
    @pytest.mark.parametrize(
        "a,b",
        [
            ("email", "email address"),
            ("email addresses", "email address"),
            ("location information", "location data"),
            ("share", "disclose"),
            ("location information", "gps location"),
            ("phone number", "telephone number"),
            ("precise location information", "location information"),
        ],
    )
    def test_equivalent_pairs(self, a, b):
        assert terms_equivalent(a, b)
        assert terms_equivalent(b, a)

    @pytest.mark.parametrize(
        "a,b",
        [
            ("email", "phone number"),
            ("password", "advertisers"),
            ("location information", "payment information"),
        ],
    )
    def test_non_equivalent_pairs(self, a, b):
        assert not terms_equivalent(a, b)

    def test_identity(self):
        assert terms_equivalent("email", "email")


class TestTaxonomyHandler:
    def test_seed_categories_proposed(self, runner):
        resp = runner.taxonomy_layer("data", ["data"], ["email", "ip address"])
        parents = dict(resp.assignments)
        assert parents["email"] == "personal data"
        assert parents["ip address"] == "technical data"

    def test_specific_parent_deferred(self, runner):
        resp = runner.taxonomy_layer(
            "data", ["data"], ["location information", "precise location information"]
        )
        terms = [t for t, _p in resp.assignments]
        assert "location information" in terms
        assert "precise location information" not in terms  # waits a layer

    def test_entity_root_uses_entity_seeds(self, runner):
        resp = runner.taxonomy_layer("entity", ["entity"], ["advertisers"])
        assert dict(resp.assignments)["advertisers"] == "commercial partner"


class TestErrorPaths:
    def test_unknown_task_raises(self):
        llm = SimulatedLLM()
        with pytest.raises(LLMError):
            llm.complete("### TASK: bogus_task\npayload")

    def test_malformed_completion_raises_llm_error(self):
        class Broken:
            def complete(self, prompt):
                return "not json"

        runner = TaskRunner(Broken())
        with pytest.raises(LLMError):
            runner.extract_company_name("Acme Privacy Policy")

    def test_completions_are_valid_json(self, runner):
        raw = SimulatedLLM().complete(
            __import__("repro.llm.prompts", fromlist=["x"]).render_extract_parameters(
                "Acme collects email.", "Acme"
            )
        )
        parsed = json.loads(raw)
        assert "practices" in parsed
