"""Concurrency hammer tests for the shared pipeline substrates.

``query_batch`` workers share one :class:`EmbeddingStore` and one
:class:`CachedLLM` per pipeline.  These tests start many threads on a
barrier and assert the substrate invariants the batch engine relies on:
no lost inserts, no duplicate backend calls for identical prompts, and
usage accounting that adds up exactly.  Heavier variants carry the
``slow`` marker (deselect with ``-m "not slow"``).
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.core.caches import ModelCaches
from repro.embeddings.search import top_k
from repro.embeddings.store import EmbeddingStore
from repro.errors import ReproError
from repro.llm.client import CachedLLM


class CountingLLM:
    """Backend that records every prompt it actually serves."""

    def __init__(self, delay: float = 0.0, fail_on: str | None = None) -> None:
        self.delay = delay
        self.fail_on = fail_on
        self.calls: list[str] = []
        self._lock = threading.Lock()

    def complete(self, prompt: str) -> str:
        with self._lock:
            self.calls.append(prompt)
        if self.delay:
            time.sleep(self.delay)
        if self.fail_on is not None and self.fail_on in prompt:
            raise ReproError(f"backend refused: {prompt!r}")
        return json.dumps({"echo": prompt})


def _hammer(n_threads: int, work) -> list[BaseException]:
    """Run ``work(thread_index)`` on barrier-started threads; collect errors."""
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def runner(index: int) -> None:
        barrier.wait()
        try:
            work(index)
        except BaseException as exc:  # noqa: BLE001 - reported by the test
            with errors_lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


class TestCachedLLMConcurrency:
    def _assert_invariants(
        self, llm: CachedLLM, inner: CountingLLM, prompts: list[str], requests: int
    ) -> None:
        distinct = len(set(prompts))
        # The dedup guarantee: each distinct prompt reached the backend once.
        assert len(inner.calls) == distinct
        assert sorted(set(inner.calls)) == sorted(set(prompts))
        # Accounting adds up exactly: every request was either the one
        # backend call for its prompt or a cache hit.
        assert llm.stats.calls == distinct
        assert llm.stats.cache_hits == requests - distinct
        assert sum(llm.stats.calls_by_task.values()) == llm.stats.calls
        assert len(llm) == distinct

    def test_identical_prompts_hit_backend_once(self):
        inner = CountingLLM(delay=0.01)
        llm = CachedLLM(inner)
        prompts = [f"prompt number {i % 4}" for i in range(16)]
        n_threads, per_thread = 8, len(prompts)

        def work(_index: int) -> None:
            for prompt in prompts:
                completion = llm.complete(prompt)
                assert json.loads(completion)["echo"] == prompt

        errors = _hammer(n_threads, work)
        assert not errors
        self._assert_invariants(llm, inner, prompts, n_threads * per_thread)

    def test_waiters_receive_owner_result(self):
        inner = CountingLLM(delay=0.05)
        llm = CachedLLM(inner)
        results: dict[int, str] = {}
        lock = threading.Lock()

        def work(index: int) -> None:
            value = llm.complete("the one contended prompt")
            with lock:
                results[index] = value

        errors = _hammer(12, work)
        assert not errors
        assert len(inner.calls) == 1
        assert len(set(results.values())) == 1

    def test_backend_errors_propagate_and_are_not_cached(self):
        inner = CountingLLM(delay=0.01, fail_on="poison")
        llm = CachedLLM(inner)
        outcomes: list[str] = []
        lock = threading.Lock()

        def work(_index: int) -> None:
            try:
                llm.complete("poison prompt")
                with lock:
                    outcomes.append("ok")
            except ReproError:
                with lock:
                    outcomes.append("error")

        errors = _hammer(6, work)
        assert not errors
        assert set(outcomes) == {"error"}
        # Failures never enter the cache; a later attempt retries the backend.
        assert len(llm) == 0
        with pytest.raises(ReproError):
            llm.complete("poison prompt")
        assert len(inner.calls) >= 2

    @pytest.mark.slow
    def test_sustained_hammer(self):
        inner = CountingLLM()
        llm = CachedLLM(inner)
        prompts = [f"sustained prompt {i % 25}" for i in range(200)]
        n_threads = 16

        def work(index: int) -> None:
            for offset, prompt in enumerate(prompts):
                llm.complete(prompts[(offset + index) % len(prompts)])
                llm.complete(prompt)

        errors = _hammer(n_threads, work)
        assert not errors
        self._assert_invariants(
            llm, inner, prompts, n_threads * 2 * len(prompts)
        )


class TestEmbeddingStoreConcurrency:
    def test_concurrent_adds_lose_nothing(self):
        store = EmbeddingStore()
        keys = [f"data type {i % 20}" for i in range(60)]

        def work(index: int) -> None:
            for offset in range(len(keys)):
                store.add(keys[(offset + index) % len(keys)])

        errors = _hammer(8, work)
        assert not errors
        distinct = sorted(set(keys))
        assert len(store) == len(distinct)
        assert sorted(store.keys) == distinct
        assert store.matrix().shape == (len(distinct), store.model.dim)
        # Index and rows stayed aligned: each key's stored vector is the
        # model's deterministic embedding of that key.
        for key in distinct:
            assert np.allclose(store.get(key), store.model.embed(key))

    def test_search_during_inserts_is_consistent(self):
        store = EmbeddingStore()
        store.add_many(["email address", "phone number", "postal address"])
        insert_keys = [f"synthetic field {i}" for i in range(40)]

        def work(index: int) -> None:
            if index % 2 == 0:
                # Even threads partition the insert set between them.
                for key in insert_keys[index // 2 :: 4]:
                    store.add(key)
            else:
                for _ in range(30):
                    hits = top_k(store, "email", k=5)
                    assert hits, "seeded keys must always be searchable"
                    # Scores pair with their own keys even mid-insert.
                    for hit in hits:
                        assert hit.key in store

        errors = _hammer(8, work)
        assert not errors
        assert len(store) == 3 + len(insert_keys)

    def test_snapshot_is_internally_aligned(self):
        store = EmbeddingStore()

        def work(index: int) -> None:
            for i in range(50):
                store.add(f"key {index} {i}")
                keys, matrix = store.snapshot()
                assert len(keys) == matrix.shape[0]

        errors = _hammer(6, work)
        assert not errors
        assert len(store) == 6 * 50

    @pytest.mark.slow
    def test_sustained_mixed_workload(self):
        store = EmbeddingStore()
        vocabulary = [f"field number {i % 64}" for i in range(512)]

        def work(index: int) -> None:
            for offset, key in enumerate(vocabulary):
                store.add(vocabulary[(offset + index) % len(vocabulary)])
                if offset % 16 == 0:
                    top_k(store, key, k=3)
                    store.get(key)

        errors = _hammer(16, work)
        assert not errors
        assert len(store) == len(set(vocabulary))


class TestModelCachesSingleFlight:
    """``ModelCaches.get_or_compute``: one computation per distinct key,
    no matter how the thread pool interleaves the callers."""

    def _counting_compute(self, value="result", delay=0.0, fail_first=False):
        state = {"calls": 0}
        lock = threading.Lock()

        def compute():
            with lock:
                state["calls"] += 1
                call = state["calls"]
            if delay:
                time.sleep(delay)
            if fail_first and call == 1:
                raise ReproError("first computation dies")
            return value

        return compute, state

    def test_concurrent_callers_compute_exactly_once(self):
        caches = ModelCaches()
        compute, state = self._counting_compute(value=object(), delay=0.05)
        results = []
        results_lock = threading.Lock()

        def work(index: int) -> None:
            value, computed = caches.get_or_compute("verification", "k", compute)
            with results_lock:
                results.append((value, computed))

        errors = _hammer(16, work)
        assert not errors
        # The whole stampede paid for one solve; everyone shares the object.
        assert state["calls"] == 1
        assert len({id(value) for value, _ in results}) == 1
        assert sum(1 for _, computed in results if computed) == 1
        assert caches.misses["verification"] == 1
        assert caches.hits["verification"] == 15

    def test_distinct_keys_each_compute_once(self):
        caches = ModelCaches()
        keys = [f"problem-{i}" for i in range(8)]
        calls: dict[str, int] = {key: 0 for key in keys}
        calls_lock = threading.Lock()

        def work(index: int) -> None:
            for offset in range(len(keys)):
                key = keys[(offset + index) % len(keys)]

                def compute(key: str = key):
                    with calls_lock:
                        calls[key] += 1
                    return key.upper()

                value, _ = caches.get_or_compute("translation", key, compute)
                assert value == key.upper()

        errors = _hammer(16, work)
        assert not errors
        assert calls == {key: 1 for key in keys}
        assert caches.misses["translation"] == len(keys)
        assert caches.hits["translation"] == 16 * len(keys) - len(keys)

    def test_leader_failure_wakes_followers_to_retry(self):
        caches = ModelCaches()
        compute, state = self._counting_compute(
            value="rescued", delay=0.05, fail_first=True
        )

        def work(index: int) -> None:
            value, _ = caches.get_or_compute("verification", "k", compute)
            assert value == "rescued"

        errors = _hammer(8, work)
        # Exactly one caller inherited the failure; a parked follower was
        # woken, re-elected, and computed the value for everyone else.
        assert len(errors) == 1
        assert isinstance(errors[0], ReproError)
        assert state["calls"] == 2
        assert caches.get("verification", "k") == "rescued"

    def test_failed_computation_caches_nothing(self):
        caches = ModelCaches()

        def compute():
            raise ReproError("boom")

        with pytest.raises(ReproError):
            caches.get_or_compute("subgraph", "k", compute)
        assert caches.misses["subgraph"] == 0
        assert caches.size("subgraph") == 0
        # The flight was cleared: a later caller computes fresh.
        value, computed = caches.get_or_compute("subgraph", "k", lambda: 7)
        assert (value, computed) == (7, True)

    def test_kinds_are_independent_namespaces(self):
        caches = ModelCaches()
        for kind in ModelCaches.KINDS:
            value, computed = caches.get_or_compute(kind, "same-key", lambda: kind)
            assert (value, computed) == (kind, True)
        for kind in ModelCaches.KINDS:
            value, computed = caches.get_or_compute(kind, "same-key", lambda: "no")
            assert (value, computed) == (kind, False)
