"""Unit tests for prompt templates, the client protocol, and caching."""

import json

import pytest

from repro.errors import PromptError
from repro.llm import prompts
from repro.llm.client import CachedLLM, LLMClient, UsageStats, prompt_fingerprint
from repro.llm.simulated import SimulatedLLM


class TestPromptRendering:
    def test_task_header_round_trip(self):
        prompt = prompts.render_extract_company_name("Acme Privacy Policy")
        assert prompts.task_name(prompt) == "extract_company_name"

    def test_payload_round_trip(self):
        prompt = prompts.render_extract_parameters("We collect data.", "Acme")
        assert prompts.extract_payload(prompt, "STATEMENT") == "We collect data."

    def test_company_window_truncated_to_1000_chars(self):
        prompt = prompts.render_extract_company_name("x" * 5000)
        payload = prompts.extract_payload(prompt, "TEXT")
        assert len(payload) == 1000

    def test_missing_payload_raises(self):
        with pytest.raises(PromptError):
            prompts.extract_payload("no payload here", "TEXT")

    def test_missing_header_raises(self):
        with pytest.raises(PromptError):
            prompts.task_name("just some text")

    def test_taxonomy_prompt_contains_both_payloads(self):
        prompt = prompts.render_taxonomy_layer("data", ["data"], ["email", "name"])
        assert prompts.extract_payload(prompt, "EXISTING") == "data"
        assert prompts.extract_payload(prompt, "REMAINING") == "email\nname"

    def test_equivalence_prompt_payloads(self):
        prompt = prompts.render_semantic_equivalence("email", "email address")
        assert prompts.extract_payload(prompt, "TERM_A") == "email"
        assert prompts.extract_payload(prompt, "TERM_B") == "email address"

    def test_extraction_prompt_carries_company(self):
        prompt = prompts.render_extract_parameters("text", "TikTak")
        assert "TikTak" in prompt

    def test_few_shot_example_present(self):
        prompt = prompts.render_extract_parameters("text", "X")
        assert "phone contacts" in prompt  # the worked example


class _CountingLLM:
    """Test double that counts completions."""

    def __init__(self) -> None:
        self.calls = 0

    def complete(self, prompt: str) -> str:
        self.calls += 1
        return json.dumps({"echo": prompt_fingerprint(prompt)[:8]})


class TestCachedLLM:
    def test_cache_hit_skips_inner(self):
        inner = _CountingLLM()
        cached = CachedLLM(inner)
        prompt = prompts.render_extract_company_name("Acme Privacy Policy")
        first = cached.complete(prompt)
        second = cached.complete(prompt)
        assert first == second
        assert inner.calls == 1
        assert cached.stats.cache_hits == 1

    def test_distinct_prompts_both_computed(self):
        inner = _CountingLLM()
        cached = CachedLLM(inner)
        cached.complete(prompts.render_extract_company_name("A Privacy Policy"))
        cached.complete(prompts.render_extract_company_name("B Privacy Policy"))
        assert inner.calls == 2

    def test_usage_stats_recorded_by_task(self):
        cached = CachedLLM(_CountingLLM())
        cached.complete(prompts.render_extract_company_name("Acme Privacy Policy"))
        cached.complete(prompts.render_semantic_equivalence("a", "b"))
        assert cached.stats.calls == 2
        assert cached.stats.calls_by_task["extract_company_name"] == 1
        assert cached.stats.calls_by_task["semantic_equivalence"] == 1

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        inner = _CountingLLM()
        cached = CachedLLM(inner, cache_path=path)
        prompt = prompts.render_extract_company_name("Acme Privacy Policy")
        cached.complete(prompt)
        cached.flush()

        reloaded = CachedLLM(_CountingLLM(), cache_path=path)
        reloaded.complete(prompt)
        assert reloaded.stats.cache_hits == 1

    def test_len_counts_entries(self):
        cached = CachedLLM(_CountingLLM())
        assert len(cached) == 0
        cached.complete(prompts.render_semantic_equivalence("a", "b"))
        assert len(cached) == 1

    def test_simulated_llm_satisfies_protocol(self):
        assert isinstance(SimulatedLLM(), LLMClient)

    def test_usage_stats_as_dict(self):
        stats = UsageStats()
        stats.record("one two", "three", "task")
        d = stats.as_dict()
        assert d["prompt_tokens"] == 2
        assert d["completion_tokens"] == 1


class TestFingerprint:
    def test_stable(self):
        assert prompt_fingerprint("abc") == prompt_fingerprint("abc")

    def test_distinct(self):
        assert prompt_fingerprint("abc") != prompt_fingerprint("abd")
