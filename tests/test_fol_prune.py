"""Unit tests for relevance pruning (the paper's future-work optimisation)."""

from repro.fol import (
    DATA,
    ENTITY,
    And,
    Constant,
    PredicateSymbol,
    implies,
    negate,
)
from repro.fol.simplify import prune_irrelevant, simplify
from repro.solver import Solver

E1 = Constant("acme", ENTITY)
D1 = Constant("email", DATA)
D2 = Constant("logs", DATA)
SHARE = PredicateSymbol("share", (ENTITY, DATA))
RETAIN = PredicateSymbol("retain", (ENTITY, DATA))
CONSENT = PredicateSymbol("consent", (), uninterpreted=True)


class TestPruneIrrelevant:
    def test_unrelated_conjuncts_dropped(self):
        whole = And((SHARE(E1, D1), RETAIN(E1, D2)))
        pruned = prune_irrelevant(whole, {"share"})
        assert pruned == SHARE(E1, D1)

    def test_shared_predicate_kept(self):
        whole = And((implies(CONSENT(), SHARE(E1, D1)), RETAIN(E1, D2)))
        pruned = prune_irrelevant(whole, {"share"})
        assert "retain" not in {
            s.name for s in __import__("repro.fol.visitor", fromlist=["x"]).collect_predicates(pruned)
        }

    def test_non_conjunction_passthrough(self):
        formula = SHARE(E1, D1)
        assert prune_irrelevant(formula, {"nothing"}) == simplify(formula)

    def test_all_irrelevant_becomes_true(self):
        from repro.fol.formula import TrueFormula

        whole = And((RETAIN(E1, D2), RETAIN(E1, D1)))
        pruned = prune_irrelevant(whole, {"share"})
        assert isinstance(pruned, TrueFormula)

    def test_pruning_preserves_query_verdict(self):
        # Entailment about `share` survives dropping retain-only facts.
        whole = And(
            (
                implies(CONSENT(), SHARE(E1, D1)),
                RETAIN(E1, D2),
                CONSENT(),
            )
        )
        pruned = prune_irrelevant(whole, {"share", "consent"})

        for formula in (whole, pruned):
            solver = Solver()
            solver.assert_formula(formula)
            solver.assert_formula(negate(SHARE(E1, D1)))
            assert solver.check_sat().is_unsat
