"""Unit tests for interrogative query normalization."""

import pytest

from repro import Verdict
from repro.core.questions import is_question, normalize_question


class TestIsQuestion:
    @pytest.mark.parametrize(
        "text",
        [
            "Does TikTak share my email with advertisers?",
            "Can advertisers receive my location",
            "Is TikTak sharing my data?",
            "Who receives my email?",
            "do you sell my data?",
        ],
    )
    def test_questions(self, text):
        assert is_question(text)

    @pytest.mark.parametrize(
        "text",
        [
            "TikTak collects my email.",
            "The user provides the phone number.",
        ],
    )
    def test_declaratives(self, text):
        assert not is_question(text)


class TestNormalizeQuestion:
    @pytest.mark.parametrize(
        "question,expected",
        [
            (
                "Does TikTak share my email with advertisers?",
                "TikTak shares the email with advertisers.",
            ),
            ("Does TikTak collect my location?", "TikTak collects the location."),
            ("Can advertisers receive my phone number?", "Advertisers receives the phone number."),
            ("Is TikTak sharing my data?", "TikTak shares the data."),
            ("Who receives my email?", "Someone receives the email."),
            ("Do you sell my data?", "You sells the data."),
        ],
    )
    def test_rewrites(self, question, expected):
        assert normalize_question(question) == expected

    def test_declarative_passthrough_normalizes_possessives(self):
        assert (
            normalize_question("TikTak collects my email.")
            == "TikTak collects the email."
        )

    def test_verb_inflection_rules(self):
        assert "processes" in normalize_question("Does Acme process my data?")
        assert "notifies" in normalize_question("Does Acme notify my contacts?")


class TestEndToEndQuestions:
    def test_question_query_matches_declarative(self, pipeline, small_model):
        declarative = pipeline.query(small_model, "Acme collects the name.")
        interrogative = pipeline.query(small_model, "Does Acme collect my name?")
        assert interrogative.verdict is declarative.verdict is Verdict.VALID

    def test_conditional_question(self, pipeline, small_model):
        outcome = pipeline.query(
            small_model, "Does Acme share my location information with advertisers?"
        )
        assert outcome.verdict is Verdict.INVALID
        assert outcome.verification.conditionally_valid is True

    def test_who_question(self, pipeline, small_model):
        outcome = pipeline.query(small_model, "Who receives my usage information?")
        # "Someone" becomes an existential query; analytics providers do
        # receive usage information (conditionally).
        assert outcome.verdict in (Verdict.VALID, Verdict.INVALID)
        assert outcome.subgraph.num_edges > 0
