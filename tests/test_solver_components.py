"""Unit tests for CNF conversion, EUF, grounding, and the atom pool."""

import pytest

from repro.errors import BudgetExceededError, SolverError
from repro.fol import (
    DATA,
    ENTITY,
    And,
    Constant,
    Iff,
    Implies,
    Not,
    Or,
    PredicateSymbol,
    Variable,
    forall,
    exists,
)
from repro.fol.formula import FALSE, TRUE
from repro.solver.cnf import atom_key, tseitin
from repro.solver.euf import (
    CongruenceClosure,
    check_euf,
    parse_atom,
    parse_term,
)
from repro.solver.grounding import GroundingCounter, Universe, ground
from repro.solver.literals import AtomPool
from repro.solver.result import SatResult
from repro.solver.sat import CDCLSolver

E1 = Constant("a", ENTITY)
E2 = Constant("b", ENTITY)
D1 = Constant("email", DATA)
P = PredicateSymbol("p", (ENTITY,))
Q = PredicateSymbol("q", (ENTITY,))
SHARE = PredicateSymbol("share", (ENTITY, DATA))


def _solve(formula):
    pool = AtomPool()
    clauses = tseitin(formula, pool)
    solver = CDCLSolver(pool.count)
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve(), pool, solver


class TestAtomPool:
    def test_interning(self):
        pool = AtomPool()
        assert pool.variable_for("p(a)") == pool.variable_for("p(a)")
        assert pool.variable_for("p(a)") != pool.variable_for("p(b)")

    def test_fresh_vars_distinct(self):
        pool = AtomPool()
        assert pool.fresh() != pool.fresh()

    def test_named_atoms_excludes_aux(self):
        pool = AtomPool()
        pool.variable_for("p(a)")
        pool.fresh("and")
        assert list(pool.named_atoms()) == ["p(a)"]

    def test_key_round_trip(self):
        pool = AtomPool()
        var = pool.variable_for("share(x,y)")
        assert pool.key_for(var) == "share(x,y)"


class TestAtomKey:
    def test_nullary(self):
        assert atom_key(PredicateSymbol("flag")()) == "flag"

    def test_binary(self):
        assert atom_key(SHARE(E1, D1)) == "share(a,email)"

    def test_free_variable_rejected(self):
        x = Variable("x", ENTITY)
        with pytest.raises(SolverError):
            atom_key(P(x))


class TestTseitin:
    def test_atom_sat(self):
        result, _pool, _ = _solve(P(E1))
        assert result is SatResult.SAT

    def test_contradiction_unsat(self):
        result, _pool, _ = _solve(And((P(E1), Not(P(E1)))))
        assert result is SatResult.UNSAT

    def test_or_requires_one(self):
        result, pool, solver = _solve(And((Or((P(E1), P(E2))), Not(P(E1)))))
        assert result is SatResult.SAT
        model = solver.model()
        assert model[pool.variable_for("p(b)")] is True

    def test_implies_modus_ponens(self):
        formula = And((Implies(P(E1), Q(E1)), P(E1), Not(Q(E1))))
        result, _pool, _ = _solve(formula)
        assert result is SatResult.UNSAT

    def test_iff_both_directions(self):
        formula = And((Iff(P(E1), Q(E1)), P(E1), Not(Q(E1))))
        result, _pool, _ = _solve(formula)
        assert result is SatResult.UNSAT

    def test_true_false_constants(self):
        assert _solve(TRUE)[0] is SatResult.SAT
        assert _solve(FALSE)[0] is SatResult.UNSAT

    def test_empty_and_is_true(self):
        assert _solve(And(()))[0] is SatResult.SAT

    def test_empty_or_is_false(self):
        assert _solve(Or(()))[0] is SatResult.UNSAT

    def test_clause_count_linear(self):
        pool = AtomPool()
        atoms = tuple(P(Constant(f"c{i}", ENTITY)) for i in range(50))
        clauses = tseitin(Or(atoms), pool)
        assert len(clauses) <= 2 * 50 + 5


class TestGrounding:
    def _universe(self):
        universe = Universe()
        universe.declare(E1)
        universe.declare(E2)
        universe.declare(D1)
        return universe

    def test_forall_becomes_conjunction(self):
        x = Variable("x", ENTITY)
        grounded = ground(forall(x, P(x)), self._universe())
        assert isinstance(grounded, And)
        assert len(grounded.operands) == 2

    def test_exists_becomes_disjunction(self):
        x = Variable("x", ENTITY)
        grounded = ground(exists(x, P(x)), self._universe())
        assert isinstance(grounded, Or)

    def test_empty_domain_forall_true(self):
        x = Variable("x", ENTITY)
        grounded = ground(forall(x, P(x)), Universe())
        assert isinstance(grounded, type(TRUE))

    def test_empty_domain_exists_false(self):
        x = Variable("x", ENTITY)
        grounded = ground(exists(x, P(x)), Universe())
        assert isinstance(grounded, type(FALSE))

    def test_nested_quantifiers_multiply(self):
        x = Variable("x", ENTITY)
        y = Variable("y", ENTITY)
        grounded = ground(forall(x, forall(y, Or((P(x), P(y))))), self._universe())
        # 2 outer instances, each with 2 inner -> 4 leaves.
        assert isinstance(grounded, And)
        total = sum(len(op.operands) for op in grounded.operands)
        assert total == 4

    def test_budget_enforced(self):
        x = Variable("x", ENTITY)
        y = Variable("y", ENTITY)
        counter = GroundingCounter(budget=2)
        with pytest.raises(BudgetExceededError):
            ground(
                forall(x, forall(y, Or((P(x), P(y))))),
                self._universe(),
                counter=counter,
            )

    def test_universe_declare_idempotent(self):
        universe = Universe()
        universe.declare(E1)
        universe.declare(E1)
        assert universe.size(ENTITY) == 1

    def test_declare_all_sorted(self):
        universe = Universe()
        universe.declare_all({E2, E1})
        assert [c.name for c in universe.domain(ENTITY)] == ["a", "b"]


class TestEUFParsing:
    def test_parse_constant(self):
        node, nodes = parse_term("a")
        assert node.name == "a" and node.children == ()
        assert len(nodes) == 1

    def test_parse_application(self):
        node, nodes = parse_term("f(a,b)")
        assert node.name == "f"
        assert node.children == ("a", "b")
        assert len(nodes) == 3

    def test_parse_nested(self):
        node, _nodes = parse_term("f(g(a),b)")
        assert node.children == ("g(a)", "b")

    def test_parse_atom(self):
        name, args = parse_atom("share(a,email)")
        assert name == "share"
        assert args == ("a", "email")

    def test_parse_nullary_atom(self):
        assert parse_atom("flag") == ("flag", ())


class TestCongruenceClosure:
    def test_merge_and_find(self):
        cc = CongruenceClosure()
        cc.merge("a", "b")
        assert cc.are_equal("a", "b")
        assert not cc.are_equal("a", "c")

    def test_transitivity(self):
        cc = CongruenceClosure()
        cc.merge("a", "b")
        cc.merge("b", "c")
        assert cc.are_equal("a", "c")

    def test_congruence_propagation(self):
        cc = CongruenceClosure()
        cc.add_term("f(a)")
        cc.add_term("f(b)")
        cc.merge("a", "b")
        cc.propagate_congruence()
        assert cc.are_equal("f(a)", "f(b)")

    def test_nested_congruence(self):
        cc = CongruenceClosure()
        cc.add_term("g(f(a))")
        cc.add_term("g(f(b))")
        cc.merge("a", "b")
        cc.propagate_congruence()
        assert cc.are_equal("g(f(a))", "g(f(b))")


class TestCheckEUF:
    def test_consistent_assignment(self):
        assert check_euf([("=(a,b)", True), ("p(a)", True), ("p(b)", True)]) is None

    def test_predicate_congruence_conflict(self):
        conflict = check_euf([("=(a,b)", True), ("p(a)", True), ("p(b)", False)])
        assert conflict is not None
        keys = {k for k, _v in conflict}
        assert "p(a)" in keys and "p(b)" in keys

    def test_disequality_violation(self):
        conflict = check_euf([("=(a,b)", True), ("=(b,c)", True), ("=(a,c)", False)])
        assert conflict is not None

    def test_disequality_alone_fine(self):
        assert check_euf([("=(a,b)", False)]) is None

    def test_function_congruence_through_equality(self):
        conflict = check_euf(
            [("=(a,b)", True), ("p(f(a))", True), ("p(f(b))", False)]
        )
        assert conflict is not None
