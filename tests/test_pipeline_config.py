"""Tests for PipelineConfig knobs and their observable effects."""

import pytest

from repro import PipelineConfig, PolicyPipeline, SolverBudget, Verdict


class TestConfigKnobs:
    def test_direct_solver_path_matches_smtlib_path(self, small_policy_text):
        via_text = PolicyPipeline(
            config=PipelineConfig(use_smtlib_roundtrip=True)
        )
        direct = PolicyPipeline(
            config=PipelineConfig(use_smtlib_roundtrip=False)
        )
        q = "Acme collects the name."
        v1 = via_text.query(via_text.process(small_policy_text), q).verdict
        v2 = direct.query(direct.process(small_policy_text), q).verdict
        assert v1 == v2 == Verdict.VALID

    def test_check_conditional_disabled(self, small_policy_text):
        pipeline = PolicyPipeline(config=PipelineConfig(check_conditional=False))
        model = pipeline.process(small_policy_text)
        outcome = pipeline.query(
            model, "Acme shares the location information with advertisers."
        )
        assert outcome.verdict is Verdict.INVALID
        assert outcome.verification.conditionally_valid is None

    def test_max_subgraph_edges_caps_encoding(self, small_policy_text):
        capped = PolicyPipeline(config=PipelineConfig(max_subgraph_edges=2))
        model = capped.process(small_policy_text)
        outcome = capped.query(model, "Acme collects the email address.")
        assert outcome.subgraph.num_edges <= 2

    def test_col_similarity_filter_flattens_taxonomy(self, small_policy_text):
        strict = PolicyPipeline(
            config=PipelineConfig(col_similarity_threshold=1.01)
        )
        model = strict.process(small_policy_text)
        # Every term ends up directly under the root: depth 1.
        assert model.data_taxonomy.max_depth() <= 1

    def test_simplify_disabled_still_correct(self, small_policy_text):
        pipeline = PolicyPipeline(config=PipelineConfig(simplify_formulas=False))
        model = pipeline.process(small_policy_text)
        outcome = pipeline.query(model, "Acme collects the name.")
        assert outcome.verdict is Verdict.VALID

    def test_tiny_solver_budget_yields_unknown(self, small_policy_text):
        pipeline = PolicyPipeline(
            config=PipelineConfig(
                solver_budget=SolverBudget(max_ground_instances=1),
                check_conditional=False,
            )
        )
        model = pipeline.process(small_policy_text)
        outcome = pipeline.query(model, "Acme collects the email address.")
        assert outcome.verdict is Verdict.UNKNOWN
        assert "budget" in outcome.verification.solver_result.reason

    def test_hierarchy_axioms_config_changes_encoding(self, small_policy_text):
        with_h = PolicyPipeline(config=PipelineConfig(include_hierarchy_axioms=True))
        without_h = PolicyPipeline(
            config=PipelineConfig(include_hierarchy_axioms=False)
        )
        q = "Acme collects the email address."
        m1 = with_h.process(small_policy_text)
        m2 = without_h.process(small_policy_text)
        e1 = with_h.query(m1, q).encoded.num_policy_formulas
        e2 = without_h.query(m2, q).encoded.num_policy_formulas
        assert e1 >= e2
