"""Determinism and cache-correctness tests for the batch query engine.

``query_batch`` must be a pure performance optimization: whatever the
worker count and whatever the cache state, its outcomes must be
byte-identical to a sequential ``query`` loop.  The second half covers the
update -> query interaction: per-model caches must never serve answers
computed against a previous policy revision.
"""

from __future__ import annotations

import json

import pytest

from repro import PipelineConfig, PolicyPipeline, Verdict
from repro.core.caches import MISS

# Mix of distinct and repeated questions: repeats exercise cache sharing,
# the distinct ones exercise misses, the interrogative exercises the
# normalization path.  24 queries, 8 distinct.
DISTINCT_QUERIES = [
    "The user provides email to TikTak.",
    "The user provides phone number to TikTak.",
    "TikTak collects email address.",
    "TikTak shares biometric identifiers with data brokers.",
    "TikTak collects the location information.",
    "TikTak shares the email address with advertisers.",
    "Does TikTak collect my email?",
    "Law enforcement receives the personal information.",
]
QUERY_SUITE = DISTINCT_QUERIES * 3


def _trace(outcomes) -> str:
    """Canonical byte string of a list of outcomes (metrics excluded)."""
    return json.dumps([o.as_dict() for o in outcomes], sort_keys=True)


class TestBatchDeterminism:
    def test_batch_matches_sequential_across_worker_counts(
        self, pipeline, tiktak_model
    ):
        tiktak_model.caches.clear()
        sequential = [pipeline.query(tiktak_model, q) for q in QUERY_SUITE]
        expected = _trace(sequential)
        assert len(QUERY_SUITE) >= 20
        for workers in (1, 4, 8):
            tiktak_model.caches.clear()
            batch = pipeline.query_batch(
                tiktak_model, QUERY_SUITE, max_workers=workers
            )
            assert batch.max_workers == workers
            assert [o.question for o in batch.outcomes] == QUERY_SUITE
            assert batch.verdicts == [o.verdict for o in sequential]
            assert [o.subgraph.num_edges for o in batch.outcomes] == [
                o.subgraph.num_edges for o in sequential
            ]
            assert _trace(batch.outcomes) == expected

    def test_warm_and_cold_caches_agree(self, pipeline, tiktak_model):
        tiktak_model.caches.clear()
        cold = pipeline.query_batch(tiktak_model, DISTINCT_QUERIES, max_workers=4)
        # Second run hits the now-populated caches everywhere.
        warm = pipeline.query_batch(tiktak_model, DISTINCT_QUERIES, max_workers=4)
        assert _trace(warm.outcomes) == _trace(cold.outcomes)
        assert warm.metrics.verification_hits == len(DISTINCT_QUERIES)
        assert warm.metrics.verification_misses == 0

    def test_caches_disabled_agrees_with_enabled(self, pipeline, tiktak_model):
        tiktak_model.caches.clear()
        cached = pipeline.query_batch(tiktak_model, DISTINCT_QUERIES, max_workers=4)
        plain_pipeline = PolicyPipeline(
            config=PipelineConfig(enable_query_caches=False)
        )
        plain = [plain_pipeline.query(tiktak_model, q) for q in DISTINCT_QUERIES]
        assert _trace(plain) == _trace(cached.outcomes)
        assert all(o.metrics.cache_hits == 0 for o in plain)

    def test_repeated_queries_share_caches(self, pipeline, tiktak_model):
        tiktak_model.caches.clear()
        batch = pipeline.query_batch(tiktak_model, QUERY_SUITE, max_workers=8)
        metrics = batch.metrics
        # 8 distinct problems, 24 queries: at most one verification miss
        # per distinct problem (a racing worker may duplicate one).
        assert metrics.verification_misses >= len(DISTINCT_QUERIES)
        assert metrics.verification_hits >= 1
        assert metrics.queries == len(QUERY_SUITE)
        assert metrics.translation_hits + metrics.translation_misses > 0

    def test_batch_outcome_surfaces(self, pipeline, tiktak_model):
        batch = pipeline.query_batch(
            tiktak_model, DISTINCT_QUERIES[:3], max_workers=2
        )
        assert len(batch) == 3
        assert [o.question for o in batch] == DISTINCT_QUERIES[:3]
        as_dict = batch.as_dict()
        assert as_dict["queries"] == 3
        assert sum(as_dict["verdicts"].values()) == 3
        assert "cache_hit_rate" in as_dict["metrics"]
        assert "queries in" in batch.summary()
        trace = batch.outcomes[0].as_dict(include_metrics=True)
        assert "metrics" in trace
        assert trace["metrics"]["queries"] == 1

    def test_empty_batch(self, pipeline, tiktak_model):
        batch = pipeline.query_batch(tiktak_model, [])
        assert len(batch) == 0
        assert batch.metrics.queries == 0

    def test_invalid_worker_count_rejected(self, pipeline, tiktak_model):
        with pytest.raises(ValueError):
            pipeline.query_batch(tiktak_model, ["x"], max_workers=0)


class TestCacheInvalidation:
    """update -> query must never serve answers from a stale revision."""

    ADDITION = "\nWe collect your shoe size.\n"
    QUESTION = "Acme collects the shoe size."

    def test_in_place_update_invalidates_caches(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        before = pipeline.query(model, self.QUESTION)
        assert before.verdict is not Verdict.VALID
        assert len(model.caches) > 0
        revision = model.revision

        pipeline.update(model, small_policy_text + self.ADDITION, in_place=True)
        assert model.revision == revision + 1
        assert len(model.caches) == 0

        after = pipeline.query(model, self.QUESTION)
        assert after.verdict is Verdict.VALID
        # The fresh answer was computed, not served from the old cache.
        assert after.metrics.verification_hits == 0

    def test_rebuild_update_invalidates_caches(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        assert pipeline.query(model, self.QUESTION).verdict is not Verdict.VALID

        updated, _ = pipeline.update(model, small_policy_text + self.ADDITION)
        assert updated.revision == model.revision + 1
        assert len(updated.caches) == 0
        assert pipeline.query(updated, self.QUESTION).verdict is Verdict.VALID

    def test_update_retires_previously_valid_answer(self, small_policy_text):
        pipeline = PolicyPipeline()
        extended = small_policy_text + self.ADDITION
        model = pipeline.process(extended)
        assert pipeline.query(model, self.QUESTION).verdict is Verdict.VALID

        pipeline.update(model, small_policy_text, in_place=True)
        retired = pipeline.query(model, self.QUESTION)
        assert retired.verdict is not Verdict.VALID

    def test_revision_keys_make_stale_entries_unreachable(self, small_policy_text):
        """Even without the eager clear, old keys cannot answer new queries."""
        from repro.core.translation import translation_cache_key

        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        pipeline.query(model, self.QUESTION)
        key_before = translation_cache_key(
            "shoe size",
            k=pipeline.config.top_k,
            min_similarity=pipeline.config.min_similarity,
            revision=model.revision,
        )
        pipeline.update(model, small_policy_text + self.ADDITION, in_place=True)
        key_after = translation_cache_key(
            "shoe size",
            k=pipeline.config.top_k,
            min_similarity=pipeline.config.min_similarity,
            revision=model.revision,
        )
        assert key_before != key_after
        assert model.caches.get("translation", key_before) is MISS

    def test_batch_after_update_sees_new_policy(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        pipeline.query_batch(model, [self.QUESTION] * 4, max_workers=4)
        pipeline.update(model, small_policy_text + self.ADDITION, in_place=True)
        batch = pipeline.query_batch(model, [self.QUESTION] * 4, max_workers=4)
        assert all(v is Verdict.VALID for v in batch.verdicts)
