"""Unit tests for NP chunking and coordination expansion."""

from repro.nlp.chunker import (
    expand_coordination,
    is_data_phrase,
    noun_phrases,
    split_enumeration,
    strip_parentheticals,
)


class TestSplitEnumeration:
    def test_oxford_comma(self):
        assert split_enumeration("name, age, and email") == ["name", "age", "email"]

    def test_two_items_with_or(self):
        assert split_enumeration("name or email") == ["name", "email"]

    def test_and_or(self):
        assert split_enumeration("cookies and/or pixels") == ["cookies", "pixels"]

    def test_single_item(self):
        assert split_enumeration("email address") == ["email address"]

    def test_trailing_period_stripped(self):
        assert split_enumeration("name, age.") == ["name", "age"]


class TestExpandCoordination:
    def test_paper_profile_enumeration(self):
        items = expand_coordination(
            "name, age, username, password, language, email, phone number, "
            "social media account information, and profile image"
        )
        assert items == [
            "name",
            "age",
            "username",
            "password",
            "language",
            "email",
            "phone number",
            "social media account information",
            "profile image",
        ]

    def test_such_as_keeps_container_and_exemplars(self):
        items = expand_coordination(
            "account information, such as username and password"
        )
        assert "account information" in items
        assert "username" in items
        assert "password" in items

    def test_singularization_applied(self):
        items = expand_coordination("names, phone numbers, and email addresses")
        assert items == ["name", "phone number", "email address"]

    def test_singularize_disabled(self):
        items = expand_coordination("names and email addresses", singularize=False)
        assert items == ["names", "email addresses"]

    def test_duplicates_collapsed(self):
        items = expand_coordination("email, email, and email")
        assert items == ["email"]

    def test_determiners_stripped(self):
        items = expand_coordination("the name and an email")
        assert items == ["name", "email"]

    def test_parentheticals_removed(self):
        items = expand_coordination("location (approximate or precise) and email")
        assert "email" in items
        assert all("(" not in i for i in items)


class TestNounPhrases:
    def test_finds_compound_phrase(self):
        phrases = noun_phrases("We collect social media account information today")
        assert any("social media account information" in p for p in phrases)

    def test_of_joining(self):
        phrases = noun_phrases("the name of contacts")
        assert "name of contacts" in phrases

    def test_stopwords_break_phrases(self):
        phrases = noun_phrases("email and password")
        assert "email" in phrases
        assert "password" in phrases

    def test_empty_text(self):
        assert noun_phrases("") == []


class TestIsDataPhrase:
    def test_known_head_noun(self):
        assert is_data_phrase("email address")
        assert is_data_phrase("phone number")
        assert is_data_phrase("social media account information")

    def test_of_phrase_uses_inner_head(self):
        assert is_data_phrase("name of contacts")

    def test_entity_is_not_data(self):
        assert not is_data_phrase("advertisers")
        assert not is_data_phrase("law enforcement")

    def test_plural_head(self):
        assert is_data_phrase("email addresses")

    def test_empty(self):
        assert not is_data_phrase("")


class TestStripParentheticals:
    def test_removed(self):
        assert strip_parentheticals("data (including logs) here") == "data  here"

    def test_no_parens(self):
        assert strip_parentheticals("plain text") == "plain text"
