"""Tests for the in-place incremental model update path."""

import pytest

from repro import PolicyPipeline, Verdict
from repro.core.hierarchy import Taxonomy, extend_taxonomy


class TestExtendTaxonomy:
    def test_new_terms_placed(self, runner):
        taxonomy = Taxonomy(root="data")
        taxonomy.add("personal data", "data")
        taxonomy.add("email", "personal data")
        added = extend_taxonomy(runner, taxonomy, ["phone number", "ip address"])
        assert added == 2
        assert taxonomy.parent("phone number") == "personal data"
        assert "ip address" in taxonomy

    def test_existing_terms_untouched(self, runner):
        taxonomy = Taxonomy(root="data")
        taxonomy.add("custom category", "data")
        taxonomy.add("email", "custom category")
        extend_taxonomy(runner, taxonomy, ["email", "email address"])
        # "email" keeps its unusual manual placement.
        assert taxonomy.parent("email") == "custom category"
        # the new specialization attaches under the existing node.
        assert taxonomy.parent("email address") == "email"

    def test_unknown_terms_attach_to_root(self, runner):
        taxonomy = Taxonomy(root="data")
        extend_taxonomy(runner, taxonomy, ["quizzblat"])
        assert taxonomy.parent("quizzblat") == "data"

    def test_returns_zero_for_no_new_terms(self, runner):
        taxonomy = Taxonomy(root="data")
        taxonomy.add("email", "data")
        assert extend_taxonomy(runner, taxonomy, ["email"]) == 0


class TestInPlaceUpdate:
    def _fresh(self, pipeline, small_policy_text):
        return pipeline.process(small_policy_text)

    def test_equivalent_to_rebuild(self, small_policy_text):
        pipeline = PolicyPipeline()
        edited = small_policy_text + "\nWe collect your shoe size.\n"

        rebuilt_model, _ = pipeline.update(
            pipeline.process(small_policy_text), edited
        )
        patched_model, _ = pipeline.update(
            pipeline.process(small_policy_text), edited, in_place=True
        )
        assert (
            patched_model.statistics.total_edges
            == rebuilt_model.statistics.total_edges
        )
        assert set(patched_model.graph.graph.nodes) == set(
            rebuilt_model.graph.graph.nodes
        )

    def test_mutates_input_model(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        edited = small_policy_text + "\nWe collect your shoe size.\n"
        patched, _stats = pipeline.update(model, edited, in_place=True)
        assert patched is model
        assert "shoe size" in model.graph.graph

    def test_removed_segment_edges_dropped(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        assert "message content" in model.graph.graph
        shortened = small_policy_text.replace(
            "If you contact customer support, we collect your message content. ", ""
        ).replace("We delete your message content after 90 days.", "")
        pipeline.update(model, shortened, in_place=True)
        assert "message content" not in model.graph.graph

    def test_new_vocabulary_enters_taxonomy_and_store(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        edited = small_policy_text + "\nWe collect your blood pressure readings.\n"
        pipeline.update(model, edited, in_place=True)
        assert "blood pressure reading" in model.data_taxonomy
        assert "blood pressure reading" in model.store
        assert "blood pressure reading" in model.node_vocabulary

    def test_query_after_in_place_update(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        edited = small_policy_text + "\nWe collect your shoe size.\n"
        pipeline.update(model, edited, in_place=True)
        outcome = pipeline.query(model, "Acme collects the shoe size.")
        assert outcome.verdict is Verdict.VALID

    def test_noop_in_place_update(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        edges_before = model.statistics.total_edges
        _patched, stats = pipeline.update(model, small_policy_text, in_place=True)
        assert stats.segments_reextracted == 0
        assert model.statistics.total_edges == edges_before
