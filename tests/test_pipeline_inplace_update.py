"""Tests for the in-place incremental model update path."""

import pytest

from repro import PolicyPipeline, Verdict
from repro.core.hierarchy import Taxonomy, extend_taxonomy


class TestExtendTaxonomy:
    def test_new_terms_placed(self, runner):
        taxonomy = Taxonomy(root="data")
        taxonomy.add("personal data", "data")
        taxonomy.add("email", "personal data")
        added = extend_taxonomy(runner, taxonomy, ["phone number", "ip address"])
        assert added == 2
        assert taxonomy.parent("phone number") == "personal data"
        assert "ip address" in taxonomy

    def test_existing_terms_untouched(self, runner):
        taxonomy = Taxonomy(root="data")
        taxonomy.add("custom category", "data")
        taxonomy.add("email", "custom category")
        extend_taxonomy(runner, taxonomy, ["email", "email address"])
        # "email" keeps its unusual manual placement.
        assert taxonomy.parent("email") == "custom category"
        # the new specialization attaches under the existing node.
        assert taxonomy.parent("email address") == "email"

    def test_unknown_terms_attach_to_root(self, runner):
        taxonomy = Taxonomy(root="data")
        extend_taxonomy(runner, taxonomy, ["quizzblat"])
        assert taxonomy.parent("quizzblat") == "data"

    def test_returns_zero_for_no_new_terms(self, runner):
        taxonomy = Taxonomy(root="data")
        taxonomy.add("email", "data")
        assert extend_taxonomy(runner, taxonomy, ["email"]) == 0


class TestInPlaceUpdate:
    def _fresh(self, pipeline, small_policy_text):
        return pipeline.process(small_policy_text)

    def test_equivalent_to_rebuild(self, small_policy_text):
        pipeline = PolicyPipeline()
        edited = small_policy_text + "\nWe collect your shoe size.\n"

        rebuilt_model, _ = pipeline.update(
            pipeline.process(small_policy_text), edited
        )
        patched_model, _ = pipeline.update(
            pipeline.process(small_policy_text), edited, in_place=True
        )
        assert (
            patched_model.statistics.total_edges
            == rebuilt_model.statistics.total_edges
        )
        assert set(patched_model.graph.graph.nodes) == set(
            rebuilt_model.graph.graph.nodes
        )

    def test_mutates_input_model(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        edited = small_policy_text + "\nWe collect your shoe size.\n"
        patched, _stats = pipeline.update(model, edited, in_place=True)
        assert patched is model
        assert "shoe size" in model.graph.graph

    def test_removed_segment_edges_dropped(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        assert "message content" in model.graph.graph
        shortened = small_policy_text.replace(
            "If you contact customer support, we collect your message content. ", ""
        ).replace("We delete your message content after 90 days.", "")
        pipeline.update(model, shortened, in_place=True)
        assert "message content" not in model.graph.graph

    def test_new_vocabulary_enters_taxonomy_and_store(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        edited = small_policy_text + "\nWe collect your blood pressure readings.\n"
        pipeline.update(model, edited, in_place=True)
        assert "blood pressure reading" in model.data_taxonomy
        assert "blood pressure reading" in model.store
        assert "blood pressure reading" in model.node_vocabulary

    def test_query_after_in_place_update(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        edited = small_policy_text + "\nWe collect your shoe size.\n"
        pipeline.update(model, edited, in_place=True)
        outcome = pipeline.query(model, "Acme collects the shoe size.")
        assert outcome.verdict is Verdict.VALID

    def test_noop_in_place_update(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        edges_before = model.statistics.total_edges
        _patched, stats = pipeline.update(model, small_policy_text, in_place=True)
        assert stats.segments_reextracted == 0
        assert model.statistics.total_edges == edges_before


class TestPatchBuildParity:
    """Both update paths must index identical embedding-store entries.

    Regression guard: the in-place path used to build edge text from raw
    practice fields (missing derived ``receive`` edges), so a patched model
    could translate and answer queries differently from a rebuilt one.
    """

    EDIT = (
        "\nWe share your purchase history with marketing partners."
        "\nWe collect your shoe size.\n"
    )

    def _models(self, small_policy_text):
        edited = small_policy_text + self.EDIT
        pipeline = PolicyPipeline()
        rebuilt, _ = pipeline.update(pipeline.process(small_policy_text), edited)
        patched, _ = pipeline.update(
            pipeline.process(small_policy_text), edited, in_place=True
        )
        return pipeline, rebuilt, patched

    def test_store_entries_identical(self, small_policy_text):
        _pipeline, rebuilt, patched = self._models(small_policy_text)
        assert set(patched.store.keys) == set(rebuilt.store.keys)
        assert patched.node_vocabulary == rebuilt.node_vocabulary

    def test_derived_receive_edge_text_indexed(self, small_policy_text):
        from repro.embeddings.search import edge_text

        _pipeline, rebuilt, patched = self._models(small_policy_text)
        derived = [e for e in patched.graph.edges() if e.derived]
        assert derived, "edit should materialize a derived receive edge"
        for edge in derived:
            key = edge_text(edge.source, edge.action, edge.target)
            assert key in patched.store
            assert key in rebuilt.store

    def test_queries_answered_identically(self, small_policy_text):
        pipeline, rebuilt, patched = self._models(small_policy_text)
        questions = [
            "Acme collects the shoe size.",
            "Marketing partners receive the purchase history.",
            "Acme shares the location information with advertisers.",
            "Acme sells contact information to third parties.",
        ]
        for question in questions:
            a = pipeline.query(rebuilt, question).as_dict()
            b = pipeline.query(patched, question).as_dict()
            assert a == b, f"divergent answers for {question!r}"

    def test_removed_vocabulary_pruned_like_rebuild(self, small_policy_text):
        pipeline = PolicyPipeline()
        shortened = small_policy_text.replace(
            "If you contact customer support, we collect your message content. ", ""
        ).replace("We delete your message content after 90 days.", "")
        rebuilt, _ = pipeline.update(pipeline.process(small_policy_text), shortened)
        patched, _ = pipeline.update(
            pipeline.process(small_policy_text), shortened, in_place=True
        )
        assert patched.node_vocabulary == rebuilt.node_vocabulary
        assert "message content" not in patched.node_vocabulary
