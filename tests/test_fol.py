"""Unit tests for the FOL AST, builders, visitors, printer, and simplifier."""

import pytest

from repro.errors import SortMismatchError
from repro.fol import (
    DATA,
    ENTITY,
    And,
    Constant,
    Exists,
    FalseFormula,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    PredicateSymbol,
    TrueFormula,
    Variable,
    collect_constants,
    collect_predicates,
    collect_uninterpreted,
    conjoin,
    disjoin,
    exists,
    forall,
    free_variables,
    implies,
    negate,
    pred,
    pretty,
    simplify,
    substitute,
    to_nnf,
    uninterpreted,
)
from repro.fol.formula import FALSE, TRUE
from repro.fol.terms import Application, FunctionSymbol, mangle

E1 = Constant("tiktak", ENTITY)
E2 = Constant("advertisers", ENTITY)
D1 = Constant("email", DATA)
X = Variable("x", ENTITY)
SHARE = PredicateSymbol("share", (ENTITY, DATA))
CONSENT = PredicateSymbol("user_consent", (), uninterpreted=True, source_text="with your consent")


class TestTermsAndSorts:
    def test_predicate_arity_checked(self):
        with pytest.raises(SortMismatchError):
            SHARE(E1)

    def test_predicate_sort_checked(self):
        with pytest.raises(SortMismatchError):
            SHARE(D1, D1)

    def test_function_application_sort(self):
        f = FunctionSymbol("owner_of", (DATA,), ENTITY)
        app = f(D1)
        assert app.sort == ENTITY

    def test_function_arity_checked(self):
        f = FunctionSymbol("owner_of", (DATA,), ENTITY)
        with pytest.raises(SortMismatchError):
            Application(f, (D1, D1))

    def test_mangle(self):
        assert mangle("email address") == "email_address"
        assert mangle("Meta's data!") == "meta_s_data"
        assert mangle("123abc")[0] != "1"
        assert mangle("") == "anon"


class TestBuilders:
    def test_conjoin_drops_true(self):
        assert conjoin([TRUE, SHARE(E1, D1)]) == SHARE(E1, D1)

    def test_conjoin_false_dominates(self):
        assert conjoin([SHARE(E1, D1), FALSE]) == FALSE

    def test_conjoin_empty_is_true(self):
        assert isinstance(conjoin([]), TrueFormula)

    def test_disjoin_drops_false(self):
        assert disjoin([FALSE, SHARE(E1, D1)]) == SHARE(E1, D1)

    def test_disjoin_true_dominates(self):
        assert isinstance(disjoin([SHARE(E1, D1), TRUE]), TrueFormula)

    def test_disjoin_empty_is_false(self):
        assert isinstance(disjoin([]), FalseFormula)

    def test_negate_double_negation(self):
        atom = SHARE(E1, D1)
        assert negate(negate(atom)) == atom

    def test_forall_multiple_vars(self):
        y = Variable("y", DATA)
        formula = forall([X, y], pred("p", X, y))
        assert isinstance(formula, Forall)
        assert isinstance(formula.body, Forall)

    def test_exists_single(self):
        formula = exists(X, SHARE(X, D1))
        assert isinstance(formula, Exists)

    def test_uninterpreted_carries_source(self):
        atom = uninterpreted("legitimate business purposes")
        assert atom.symbol.uninterpreted
        assert atom.symbol.source_text == "legitimate business purposes"
        assert atom.symbol.name == "legitimate_business_purposes"

    def test_operator_overloads(self):
        a, b = SHARE(E1, D1), SHARE(E2, D1)
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)


class TestVisitors:
    def test_collect_predicates(self):
        formula = implies(SHARE(E1, D1), CONSENT())
        names = {s.name for s in collect_predicates(formula)}
        assert names == {"share", "user_consent"}

    def test_collect_uninterpreted(self):
        formula = implies(SHARE(E1, D1), CONSENT())
        assert {s.name for s in collect_uninterpreted(formula)} == {"user_consent"}

    def test_collect_constants(self):
        formula = And((SHARE(E1, D1), SHARE(E2, D1)))
        assert collect_constants(formula) == {E1, E2, D1}

    def test_free_variables(self):
        formula = SHARE(X, D1)
        assert free_variables(formula) == {X}

    def test_bound_variables_not_free(self):
        formula = forall(X, SHARE(X, D1))
        assert free_variables(formula) == set()

    def test_substitute_ground_term(self):
        formula = SHARE(X, D1)
        ground = substitute(formula, {X: E1})
        assert ground == SHARE(E1, D1)

    def test_substitute_respects_shadowing(self):
        inner = forall(X, SHARE(X, D1))
        result = substitute(inner, {X: E1})
        assert result == inner


class TestSimplify:
    def test_flattens_nested_and(self):
        formula = And((And((SHARE(E1, D1), SHARE(E2, D1))), CONSENT()))
        simplified = simplify(formula)
        assert isinstance(simplified, And)
        assert len(simplified.operands) == 3

    def test_removes_duplicates(self):
        formula = And((SHARE(E1, D1), SHARE(E1, D1)))
        assert simplify(formula) == SHARE(E1, D1)

    def test_true_absorbed_in_and(self):
        assert simplify(And((TRUE, SHARE(E1, D1)))) == SHARE(E1, D1)

    def test_false_dominates_and(self):
        assert isinstance(simplify(And((FALSE, SHARE(E1, D1)))), FalseFormula)

    def test_implies_true_antecedent(self):
        assert simplify(Implies(TRUE, SHARE(E1, D1))) == SHARE(E1, D1)

    def test_implies_false_antecedent(self):
        assert isinstance(simplify(Implies(FALSE, SHARE(E1, D1))), TrueFormula)

    def test_double_negation(self):
        assert simplify(Not(Not(SHARE(E1, D1)))) == SHARE(E1, D1)

    def test_iff_identical_sides(self):
        assert isinstance(simplify(Iff(SHARE(E1, D1), SHARE(E1, D1))), TrueFormula)

    def test_quantifier_over_constant_body(self):
        assert isinstance(simplify(Forall(X, TRUE)), TrueFormula)


class TestNNF:
    def test_negated_and_becomes_or(self):
        formula = Not(And((SHARE(E1, D1), SHARE(E2, D1))))
        nnf = to_nnf(formula)
        assert isinstance(nnf, Or)

    def test_negated_implies(self):
        formula = Not(Implies(SHARE(E1, D1), CONSENT()))
        nnf = to_nnf(formula)
        assert isinstance(nnf, And)

    def test_negated_forall_becomes_exists(self):
        formula = Not(forall(X, SHARE(X, D1)))
        nnf = to_nnf(formula)
        assert isinstance(nnf, Exists)
        assert isinstance(nnf.body, Not)

    def test_negations_only_on_atoms(self):
        formula = Not(Or((And((SHARE(E1, D1), CONSENT())), SHARE(E2, D1))))
        nnf = to_nnf(formula)

        def check(node):
            if isinstance(node, Not):
                from repro.fol.formula import Predicate

                assert isinstance(node.operand, Predicate)
            for attr in ("operands",):
                for child in getattr(node, attr, ()):
                    check(child)
            for attr in ("antecedent", "consequent", "body", "operand", "left", "right"):
                child = getattr(node, attr, None)
                if child is not None and not isinstance(child, Variable):
                    check(child)

        check(nnf)


class TestPrinter:
    def test_atom(self):
        assert pretty(SHARE(E1, D1)) == "share(tiktak, email)"

    def test_uninterpreted_marked(self):
        assert pretty(CONSENT()) == "user_consent?"

    def test_implication_arrow(self):
        text = pretty(implies(SHARE(E1, D1), CONSENT()))
        assert "→" in text

    def test_ascii_mode(self):
        text = pretty(implies(SHARE(E1, D1), CONSENT()), unicode_symbols=False)
        assert "->" in text

    def test_quantifier_rendered(self):
        text = pretty(forall(X, SHARE(X, D1)))
        assert text.startswith("∀x:Entity.")

    def test_precedence_parentheses(self):
        a, b, c = SHARE(E1, D1), SHARE(E2, D1), CONSENT()
        text = pretty(Or((And((a, b)), c)))
        assert "∧" in text and "∨" in text
