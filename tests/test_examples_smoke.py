"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them honest as
the library evolves.  Each runs in a subprocess exactly as a user would
run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_examples_exist():
    # The repository promises at least a quickstart plus domain scenarios.
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4
