"""Invariant auditor: structure checks, parity vs rebuild, auto-heal.

The parity suite is the paper's "update only those branches" promise made
testable: for every edit mix ``corpus.versions.make_version`` can
produce, an in-place patched model must be indistinguishable — graph
edges, both taxonomies, vocabulary, and query verdicts — from a model
rebuilt from scratch on the same extraction.
"""

from __future__ import annotations

import pytest

from repro import PipelineConfig, PolicyPipeline
from repro.corpus.versions import make_version
from repro.store import audit_parity, audit_structure, heal_model


def rebuild_twin(pipeline, patched):
    """From-scratch model over the patched model's extraction."""
    rebuilt = pipeline._build_model(patched.extraction)
    rebuilt.revision = patched.revision
    return rebuilt


class TestStructureAudit:
    def test_fresh_model_passes(self, small_model):
        report = audit_structure(small_model)
        assert report.passed, report.summary()
        assert "embedding-index-sync" in report.checks_run

    def test_patched_model_passes(self, pipeline, small_policy_text):
        model = pipeline.process(small_policy_text)
        version = make_version(small_policy_text, seed=0)
        pipeline.update(model, version.text, in_place=True)
        report = audit_structure(model)
        assert report.passed, report.summary()

    def test_catches_vocabulary_drift(self, pipeline, small_policy_text):
        model = pipeline.process(small_policy_text)
        model.node_vocabulary = set(model.node_vocabulary) | {"phantom term"}
        report = audit_structure(model)
        assert not report.passed
        assert any(f.check == "vocabulary-sync" for f in report.findings)

    def test_catches_embedding_index_drift(self, pipeline, small_policy_text):
        # The `_index_graph_embeddings` drift class: a graph element whose
        # vector never made it into the store.
        from repro.embeddings import EmbeddingStore

        model = pipeline.process(small_policy_text)
        victim = next(iter(model.graph.graph.nodes))
        partial = EmbeddingStore(model.store.model)
        partial.add_many([k for k in model.store.keys if k != victim])
        model.store = partial
        report = audit_structure(model)
        assert any(f.check == "embedding-index-sync" for f in report.findings)

    def test_catches_phantom_edge(self, pipeline, small_policy_text):
        from repro.core.graphs import PracticeEdge

        model = pipeline.process(small_policy_text)
        model.graph.restore_edge(
            PracticeEdge(
                source="Acme",
                action="collect",
                target="shoe size",
                receiver=None,
                condition=None,
                permission=True,
                segment_id="seg-999",
            )
        )
        report = audit_structure(model)
        checks = {f.check for f in report.findings}
        assert "edge-practice-parity" in checks
        assert "edge-provenance" in checks

    def test_report_serializes(self, small_model):
        report = audit_structure(small_model)
        payload = report.as_dict()
        assert payload["kind"] == "structure"
        assert payload["passed"] is True


class TestParityAudit:
    @pytest.mark.parametrize(
        "seed,add,remove,recondition",
        [
            (0, 2, 2, 2),  # the default mixed edit
            (1, 3, 0, 0),  # pure additions
            (2, 0, 3, 0),  # pure removals
            (3, 0, 0, 3),  # pure reconditioning
            (4, 1, 1, 0),  # add + remove
            (5, 0, 1, 1),  # remove + recondition
        ],
    )
    def test_in_place_update_matches_rebuild(
        self, small_policy_text, seed, add, remove, recondition
    ):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        version = make_version(
            small_policy_text,
            seed=seed,
            add=add,
            remove=remove,
            recondition=recondition,
        )
        pipeline.update(model, version.text, in_place=True)
        report = audit_parity(model, rebuild_twin(pipeline, model))
        assert report.passed, report.summary()

    def test_chained_updates_keep_parity(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        text = small_policy_text
        for seed in (0, 1, 2):
            text = make_version(text, seed=seed).text
            pipeline.update(model, text, in_place=True)
        report = audit_parity(model, rebuild_twin(pipeline, model))
        assert report.passed, report.summary()

    def test_query_verdicts_match_rebuild(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        version = make_version(small_policy_text, seed=0)
        pipeline.update(model, version.text, in_place=True)
        rebuilt = rebuild_twin(pipeline, model)
        for question in (
            "Acme collects the email address.",
            "Acme sells your contact information.",
            "Acme shares usage information with analytics providers.",
            "Acme collects your shoe size.",
        ):
            patched_verdict = pipeline.query(model, question).verdict
            rebuilt_verdict = pipeline.query(rebuilt, question).verdict
            assert patched_verdict == rebuilt_verdict, question

    def test_detects_seeded_drift(self, small_policy_text):
        # A deliberately buggy patch (the pre-fix `extend_taxonomy`
        # behaviour: keep stale taxonomy nodes) must be caught.
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        version = make_version(small_policy_text, seed=0, add=0, remove=2)
        saved = pipeline._rebuild_taxonomies
        pipeline._rebuild_taxonomies = lambda model: None  # seed the bug
        try:
            pipeline.update(model, version.text, in_place=True)
        finally:
            pipeline._rebuild_taxonomies = saved
        report = audit_parity(model, rebuild_twin(pipeline, model))
        assert not report.passed
        assert any(
            f.check in ("data_taxonomy", "entity_taxonomy")
            for f in report.findings
        )


class TestHeal:
    def test_heal_restores_parity_in_place(self, small_policy_text):
        pipeline = PolicyPipeline()
        model = pipeline.process(small_policy_text)
        version = make_version(small_policy_text, seed=0)
        saved = pipeline._rebuild_taxonomies
        pipeline._rebuild_taxonomies = lambda model: None
        try:
            pipeline.update(model, version.text, in_place=True)
        finally:
            pipeline._rebuild_taxonomies = saved
        rebuilt = rebuild_twin(pipeline, model)
        revision = model.revision
        reference = model  # callers keep references to the patched object
        heal_model(model, rebuilt)
        assert audit_parity(model, rebuilt).passed
        assert model is reference
        assert model.revision == revision

    def test_pipeline_audit_hook_heals_automatically(self, small_policy_text):
        class BuggyPipeline(PolicyPipeline):
            def _rebuild_taxonomies(self, model):
                pass  # drift: stale taxonomy survives segment removal

        pipeline = BuggyPipeline(
            config=PipelineConfig(audit_updates=True, auto_heal=True)
        )
        model = pipeline.process(small_policy_text)
        version = make_version(small_policy_text, seed=0, add=0, remove=2)
        _, stats = pipeline.update(model, version.text, in_place=True)
        assert stats.audited
        assert stats.audit_findings > 0
        assert stats.healed
        assert pipeline.metrics.audits_run == 1
        assert pipeline.metrics.audit_failures == 1
        assert pipeline.metrics.audit_heals == 1
        # After the heal the model is indistinguishable from a rebuild.
        assert audit_parity(model, rebuild_twin(pipeline, model)).passed

    def test_audit_hook_without_heal_reports_only(self, small_policy_text):
        class BuggyPipeline(PolicyPipeline):
            def _rebuild_taxonomies(self, model):
                pass

        pipeline = BuggyPipeline(config=PipelineConfig(audit_updates=True))
        model = pipeline.process(small_policy_text)
        version = make_version(small_policy_text, seed=0, add=0, remove=2)
        _, stats = pipeline.update(model, version.text, in_place=True)
        assert stats.audited and stats.audit_findings > 0
        assert not stats.healed
        assert pipeline.metrics.audit_heals == 0

    def test_audit_hook_passes_on_correct_update(self, small_policy_text):
        pipeline = PolicyPipeline(config=PipelineConfig(audit_updates=True))
        model = pipeline.process(small_policy_text)
        version = make_version(small_policy_text, seed=0)
        _, stats = pipeline.update(model, version.text, in_place=True)
        assert stats.audited
        assert stats.audit_findings == 0
        assert not stats.healed
        assert pipeline.metrics.audit_failures == 0
