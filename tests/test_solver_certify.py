"""Certified verdicts: the trust-but-verify layer under every check-sat.

Covers the three certification legs (independent model evaluation for SAT,
clausal-proof replay for UNSAT, congruence re-checking for EUF lemmas),
the soundness-mutation catalog (every seeded fault in
``repro.solver.faults`` must be caught and demoted to UNKNOWN, never
surfaced as a wrong verdict), the standalone proof checker, and the
wall-clock deadline enforcement added to grounding, preprocessing, and
long propagation chains.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.errors import BudgetExceededError
from repro.fol.formula import And, Exists, Forall, Implies, Not, Or, PredicateSymbol
from repro.fol.terms import Constant, Sort, Variable
from repro.solver import (
    CERTIFICATION_FAILED,
    CertificateReport,
    CertificationConfig,
    SatResult,
    Solver,
    SolverBudget,
)
from repro.solver import faults
from repro.solver import modelcheck
from repro.solver.grounding import GroundingCounter, Universe, ground
from repro.solver.preprocess import preprocess
from repro.solver.proof import ProofLog, check_proof
from repro.solver.sat import CDCLSolver

S = Sort("S")
A = Constant("a", S)
B = Constant("b", S)
C = Constant("c", S)
X = Variable("x", S)
P = PredicateSymbol("p", (S,))
Q = PredicateSymbol("q", ())
R = PredicateSymbol("r", ())
EQ = PredicateSymbol("=", (S, S))


def certified_solver(**overrides) -> Solver:
    return Solver(certification=CertificationConfig(**overrides))


def pigeonhole(pigeons: int, holes: int) -> list:
    """PHP(pigeons, holes): UNSAT when pigeons > holes; forces learning."""
    atom = [
        [PredicateSymbol(f"x{i}_{j}", ())() for j in range(holes)]
        for i in range(pigeons)
    ]
    clauses = [Or(tuple(atom[i][j] for j in range(holes))) for i in range(pigeons)]
    for j in range(holes):
        for i in range(pigeons):
            for k in range(i + 1, pigeons):
                clauses.append(Or((Not(atom[i][j]), Not(atom[k][j]))))
    return clauses


def random_3sat(seed: int, num_vars: int = 12, ratio: float = 4.3) -> list:
    """Seeded random 3-SAT over 0-ary predicates (learning-heavy)."""
    rng = random.Random(seed)
    vs = [PredicateSymbol(f"v{i}", ())() for i in range(num_vars)]
    clauses = []
    for _ in range(int(num_vars * ratio)):
        picked = rng.sample(range(num_vars), 3)
        clauses.append(
            Or(tuple(vs[i] if rng.random() < 0.5 else Not(vs[i]) for i in picked))
        )
    return clauses


class TestCertifiedVerdicts:
    def test_sat_answer_carries_certified_model_report(self):
        solver = certified_solver()
        solver.assert_formula(Or((Q(), R())))
        solver.assert_formula(Not(R()))
        result = solver.check_sat()
        assert result.status is SatResult.SAT
        report = result.certificate
        assert report is not None and report.certified
        assert "cnf-model" in report.checks
        assert "fol-model" in report.checks
        assert report.failures == []

    def test_unsat_answer_carries_proof_replay_report(self):
        solver = certified_solver()
        solver.assert_formula(Q())
        solver.assert_formula(Not(Q()))
        result = solver.check_sat()
        assert result.status is SatResult.UNSAT
        report = result.certificate
        assert report is not None and report.certified
        assert "proof-replay" in report.checks
        assert report.proof_events > 0

    def test_learning_heavy_unsat_proof_replays(self):
        solver = certified_solver()
        for clause in pigeonhole(4, 3):
            solver.assert_formula(clause)
        result = solver.check_sat()
        assert result.status is SatResult.UNSAT
        assert result.statistics.conflicts > 0, "instance must force learning"
        assert result.certificate.certified

    def test_euf_theory_lemmas_are_certified(self):
        solver = certified_solver()
        solver.assert_formula(EQ(A, B))
        solver.assert_formula(EQ(B, C))
        solver.assert_formula(P(A))
        solver.assert_formula(Not(P(C)))
        result = solver.check_sat()
        assert result.status is SatResult.UNSAT
        report = result.certificate
        assert report.certified
        assert report.lemmas_certified >= 1

    def test_euf_sat_model_checked_for_congruence(self):
        solver = certified_solver()
        solver.assert_formula(EQ(A, B))
        solver.assert_formula(P(A))
        result = solver.check_sat()
        assert result.status is SatResult.SAT
        assert "euf-model" in result.certificate.checks
        assert result.certificate.certified

    def test_quantified_formulas_pass_grounding_parity(self):
        solver = certified_solver()
        solver.declare_constant(A)
        solver.declare_constant(B)
        solver.assert_formula(Forall(X, P(X)))
        result = solver.check_sat()
        assert result.status is SatResult.SAT
        assert "grounding-parity" in result.certificate.checks
        assert result.certificate.certified

    def test_assumptions_are_checked_in_the_model(self):
        solver = certified_solver()
        solver.assert_formula(Or((Q(), R())))
        result = solver.check_sat_assuming([Not(Q())])
        assert result.status is SatResult.SAT
        assert "assumptions" in result.certificate.checks
        assert result.certificate.certified

    def test_incremental_asserts_keep_per_formula_universe_snapshots(self):
        # A constant declared *after* a quantified assert must not make the
        # parity check re-expand the earlier formula over the larger
        # universe.
        solver = certified_solver()
        solver.declare_constant(A)
        solver.assert_formula(Forall(X, P(X)))
        solver.declare_constant(B)
        solver.assert_formula(Exists(X, Not(P(X))))
        result = solver.check_sat()
        assert result.certificate is not None
        assert result.certificate.certified

    def test_no_certification_config_means_no_report(self):
        solver = Solver()
        solver.assert_formula(Q())
        result = solver.check_sat()
        assert result.certificate is None

    def test_disabled_certification_config_means_no_report(self):
        solver = Solver(certification=CertificationConfig(enabled=False))
        solver.assert_formula(Q())
        result = solver.check_sat()
        assert result.certificate is None

    def test_unknown_verdicts_are_not_certified(self):
        solver = Solver(
            budget=SolverBudget(max_ground_instances=1),
            certification=CertificationConfig(),
        )
        for c in (A, B, C):
            solver.declare_constant(c)
        solver.assert_formula(Forall(X, P(X)))
        result = solver.check_sat()
        assert result.status is SatResult.UNKNOWN
        assert result.certificate is None

    def test_preprocessing_skips_proof_replay_but_checks_models(self):
        unsat = Solver(enable_preprocessing=True, certification=CertificationConfig())
        unsat.assert_formula(Q())
        unsat.assert_formula(Not(Q()))
        result = unsat.check_sat()
        assert result.status is SatResult.UNSAT
        assert result.certificate.status == "skipped"

        sat = Solver(enable_preprocessing=True, certification=CertificationConfig())
        sat.assert_formula(Or((Q(), R())))
        result = sat.check_sat()
        assert result.status is SatResult.SAT
        assert result.certificate.certified
        assert "fol-model" in result.certificate.checks

    def test_report_serialization(self):
        report = CertificateReport(
            verdict="sat", status="failed", checks=["cnf-model"], failures=["boom"]
        )
        as_dict = report.as_dict()
        assert as_dict["status"] == "failed"
        assert "seconds" not in as_dict
        assert report.failed and not report.certified
        assert "boom" in report.summary()


def _mutation(name: str) -> faults.Mutation:
    mutation = next(
        (m for m in faults.soundness_mutations() if m.name == name), None
    )
    assert mutation is not None, f"unknown mutation {name!r}"
    return mutation


def _euf_unsat() -> list:
    return [EQ(A, B), EQ(B, C), P(A), Not(P(C))]


def _forall_violated() -> list:
    return [Forall(X, P(X)), Not(P(B))]


#: Mutation name -> (formulas, constants to declare) on which the mutation
#: is known (deterministically) to fire AND corrupt the verdict or its
#: witness, so certification must raise the soundness alarm.
MUTATION_INSTANCES = {
    "drop-learned-literal": (random_3sat(3), ()),
    "flip-learned-literal": (pigeonhole(4, 3), ()),
    "flip-model-bit": ([P(A)], ()),
    "suppress-theory-conflict": (_euf_unsat(), ()),
    "drop-lemma-literal": (_euf_unsat(), ()),
    "drop-ground-instance": (_forall_violated(), (A, B)),
    "swap-ground-connective": (_forall_violated(), (A, B)),
}


class TestSoundnessMutationCatalog:
    def test_catalog_covers_at_least_six_distinct_sites(self):
        mutations = faults.soundness_mutations()
        assert len({m.site for m in mutations}) >= 6
        assert {m.name for m in mutations} == set(MUTATION_INSTANCES)

    @pytest.mark.parametrize("name", sorted(MUTATION_INSTANCES))
    def test_mutation_is_caught_and_demoted(self, name):
        formulas, constants = MUTATION_INSTANCES[name]
        mutation = _mutation(name)
        solver = certified_solver()
        for constant in constants:
            solver.declare_constant(constant)
        for formula in formulas:
            solver.assert_formula(formula)
        with faults.installed(mutation):
            result = solver.check_sat()
        assert mutation.fires > 0, f"{name} never fired on its instance"
        assert result.status is SatResult.UNKNOWN
        assert result.reason.startswith(CERTIFICATION_FAILED)
        report = result.certificate
        assert report is not None and report.failed
        assert report.failures, "alarm must name what failed"

    @pytest.mark.parametrize("name", sorted(MUTATION_INSTANCES))
    def test_mutation_never_surfaces_a_decided_verdict(self, name):
        """Even on *other* instances, a fired mutation may demote a verdict
        to UNKNOWN but must never flip it to the wrong decided answer."""
        formulas, constants = MUTATION_INSTANCES[name]
        reference = Solver()
        for constant in constants:
            reference.declare_constant(constant)
        for formula in formulas:
            reference.assert_formula(formula)
        expected = reference.check_sat().status

        mutation = _mutation(name)
        solver = certified_solver()
        for constant in constants:
            solver.declare_constant(constant)
        for formula in formulas:
            solver.assert_formula(formula)
        with faults.installed(mutation):
            result = solver.check_sat()
        assert result.status in (expected, SatResult.UNKNOWN)

    def test_clean_run_after_mutation_context_exits(self):
        mutation = _mutation("flip-model-bit")
        solver = certified_solver()
        solver.assert_formula(P(A))
        with faults.installed(mutation):
            assert solver.check_sat().status is SatResult.UNKNOWN
        # The seam is identity again: same solver, fresh check, clean pass.
        result = solver.check_sat()
        assert result.status is SatResult.SAT
        assert result.certificate.certified

    def test_mutation_site_names_are_validated(self):
        with pytest.raises(ValueError):
            faults.Mutation(site="not.a.site", name="x", fn=lambda v: v)


class TestProofChecker:
    def _variable_for(self):
        mapping: dict[str, int] = {}

        def variable_for(key: str) -> int:
            return mapping.setdefault(key, len(mapping) + 1)

        return variable_for

    def test_valid_resolution_proof_accepted(self):
        log = ProofLog()
        log.log_input((1, 2))
        log.log_input((-1, 2))
        log.log_input((-2,))
        log.log_learn((2,))  # RUP: assume -2, both inputs propagate to conflict
        result = check_proof(log.events)
        assert result.ok
        assert result.events_checked == len(log.events)

    def test_non_rup_learned_clause_rejected(self):
        log = ProofLog()
        log.log_input((1, 2))
        log.log_learn((1,))  # not implied by (1 or 2)
        result = check_proof(log.events)
        assert not result.ok
        assert any("not RUP" in f for f in result.failures)

    def test_unsat_claim_requires_final_conflict(self):
        log = ProofLog()
        log.log_input((1, 2))
        result = check_proof(log.events)
        assert not result.ok
        assert any("UNSAT claim" in f for f in result.failures)

    def test_deleted_clause_no_longer_supports_the_proof(self):
        log = ProofLog()
        log.log_input((1,))
        log.log_input((-1,))
        log.log_delete((1,))
        result = check_proof(log.events)
        assert not result.ok  # conflict needed (1) which was deleted

    def test_delete_of_unknown_clause_rejected(self):
        log = ProofLog()
        log.log_input((1,))
        log.log_delete((2,))
        result = check_proof(log.events)
        assert not result.ok
        assert any("deletion" in f for f in result.failures)

    def test_delete_matches_by_content_despite_reordering(self):
        log = ProofLog()
        log.log_input((2, 1))
        log.log_input((-1,))
        log.log_input((-2,))
        log.log_delete((1, 2))  # same clause, different literal order
        log.log_input((1, 2))
        result = check_proof(log.events)
        assert result.ok

    def test_assumptions_participate_in_final_conflict(self):
        log = ProofLog()
        log.log_input((-1, 2))
        log.log_input((-2,))
        assert not check_proof(log.events).ok
        assert check_proof(log.events, assumptions=(1,)).ok

    def test_event_cap_reports_too_large(self):
        log = ProofLog()
        for i in range(1, 6):
            log.log_input((i,))
        result = check_proof(log.events, max_events=2)
        assert not result.ok
        assert any("too large" in f for f in result.failures)

    def test_theory_lemma_with_consistent_premise_rejected(self):
        variable_for = self._variable_for()
        log = ProofLog()
        # Premise {p(a)=True} is EUF-consistent, so no lemma may claim it
        # as a congruence conflict.
        premise = (("p(a)", True),)
        log.log_theory((-variable_for("p(a)"),), premise)
        result = check_proof(log.events, variable_for=variable_for)
        assert not result.ok

    def test_theory_lemma_certified_against_its_premise(self):
        variable_for = self._variable_for()
        premise = (("=(a,b)", True), ("p(a)", True), ("p(b)", False))
        lemma = tuple(
            -variable_for(key) if value else variable_for(key)
            for key, value in premise
        )
        log = ProofLog()
        for lit in lemma:
            log.log_input((lit,))  # make the final claim succeed
        log.log_theory(lemma, premise)
        result = check_proof(log.events, variable_for=variable_for)
        assert not result.ok or result.lemmas_certified >= 1


class TestIndependentModelCheck:
    def test_clause_violations_reports_falsified_clauses(self):
        clauses = [(1, 2), (-1, 3)]
        assert modelcheck.clause_violations(clauses, {1: True, 3: True}) == []
        violations = modelcheck.clause_violations(clauses, {1: True, 3: False})
        assert violations == [(-1, 3)]

    def test_missing_variables_default_to_false(self):
        assert modelcheck.clause_violations([(1,)], {}) == [(1,)]
        assert modelcheck.clause_violations([(-1,)], {}) == []

    def test_evaluate_formula_with_quantifiers(self):
        domains = {S: (A, B)}
        assignment = {"p(a)": True, "p(b)": False}
        assert modelcheck.evaluate_formula(Exists(X, P(X)), assignment, domains)
        assert not modelcheck.evaluate_formula(Forall(X, P(X)), assignment, domains)
        assert modelcheck.evaluate_formula(
            Implies(Forall(X, P(X)), Q()), assignment, domains
        )

    def test_expand_matches_production_grounding(self):
        universe = Universe()
        universe.declare(A)
        universe.declare(B)
        formula = Forall(X, Or((P(X), Q())))
        production = ground(formula, universe)
        independent = modelcheck.expand(formula, universe.snapshot())
        assert production == independent

    def test_euf_consistent_detects_transitivity_violation(self):
        consistent = [("=(a,b)", True), ("p(a)", True), ("p(b)", True)]
        assert modelcheck.euf_consistent(consistent)
        broken = [
            ("=(a,b)", True),
            ("=(b,c)", True),
            ("p(a)", True),
            ("p(c)", False),
        ]
        assert not modelcheck.euf_consistent(broken)

    def test_euf_consistent_detects_disequality_merge(self):
        assert not modelcheck.euf_consistent(
            [("=(a,b)", True), ("=(b,a)", False)]
        )

    def test_euf_congruence_over_function_terms(self):
        assert not modelcheck.euf_consistent(
            [("=(a,b)", True), ("=(f(a),f(b))", False)]
        )

    def test_brute_force_status_matches_known_answers(self):
        domains = {S: (A, B)}
        assert modelcheck.brute_force_status([Forall(X, P(X))], domains) == "sat"
        assert (
            modelcheck.brute_force_status(
                [Forall(X, P(X)), Not(P(B))], domains
            )
            == "unsat"
        )
        assert (
            modelcheck.brute_force_status(_euf_unsat(), {S: (A, B, C)}) == "unsat"
        )

    def test_brute_force_status_caps_atom_count(self):
        formulas = [PredicateSymbol(f"b{i}", ())() for i in range(8)]
        with pytest.raises(Exception):
            modelcheck.brute_force_status(formulas, {}, max_atoms=4)


class TestWallClockDeadlines:
    def test_grounding_honours_expired_deadline(self):
        universe = Universe()
        constants = [Constant(f"c{i}", S) for i in range(30)]
        for constant in constants:
            universe.declare(constant)
        y, z = Variable("y", S), Variable("z", S)
        big = Forall(X, Forall(y, Forall(z, P(X))))
        counter = GroundingCounter(None, deadline=time.monotonic() - 1.0)
        with pytest.raises(BudgetExceededError, match="wall-clock timeout"):
            ground(big, universe, counter=counter)
        # The deadline fired during expansion, far before the 30^3
        # instances a full expansion would have spent.
        assert counter.count < 30**3

    def test_solver_deadline_reaches_grounding(self):
        solver = Solver(
            budget=SolverBudget(timeout_seconds=0.0, max_ground_instances=None)
        )
        for i in range(30):
            solver.declare_constant(Constant(f"c{i}", S))
        y, z = Variable("y", S), Variable("z", S)
        solver.assert_formula(Forall(X, Forall(y, Forall(z, P(X)))))
        result = solver.check_sat()
        assert result.status is SatResult.UNKNOWN
        assert "timeout" in result.reason
        assert result.statistics.ground_instances < 30**3

    def test_preprocessing_honours_expired_deadline(self):
        clauses = [(i, i + 1) for i in range(1, 2000)]
        with pytest.raises(BudgetExceededError, match="wall-clock timeout"):
            preprocess(clauses, deadline=time.monotonic() - 1.0)

    def test_propagation_chain_honours_deadline_mid_pass(self):
        # One implication chain of 6000 variables: a single _propagate()
        # pass would walk all of it before the outer budget check runs.
        sat = CDCLSolver(6000, deadline=time.monotonic() - 1.0)
        for v in range(1, 6000):
            sat.add_clause((-v, v + 1))
        sat.add_clause((1,))
        with pytest.raises(BudgetExceededError, match="wall-clock timeout"):
            sat.solve()
        # The in-pass check (every 1024 propagations) stopped the chain
        # long before it completed.
        assert sat.stats.propagations <= 2048
