"""Unit tests for sentence and word tokenization."""

from repro.nlp.tokenizer import Token, sentence_spans, sentences, tokenize, words


class TestTokenize:
    def test_simple_words(self):
        tokens = tokenize("We collect data")
        assert [t.text for t in tokens] == ["We", "collect", "data"]

    def test_spans_match_source(self):
        text = "We collect your email."
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_punctuation_kept_as_tokens(self):
        tokens = tokenize("name, age, and email.")
        assert "," in [t.text for t in tokens]
        assert "." in [t.text for t in tokens]

    def test_hyphenated_compound_is_one_token(self):
        tokens = tokenize("voice-enabled features")
        assert tokens[0].text == "voice-enabled"

    def test_numbers_tokenized(self):
        tokens = tokenize("retained for 90 days")
        assert "90" in [t.text for t in tokens]

    def test_is_word_excludes_punctuation_and_numbers(self):
        tokens = tokenize("a, 90")
        flags = {t.text: t.is_word for t in tokens}
        assert flags["a"] is True
        assert flags[","] is False
        assert flags["90"] is False

    def test_lower_property(self):
        token = Token("Email", 0, 5)
        assert token.lower == "email"

    def test_empty_input(self):
        assert tokenize("") == []

    def test_words_helper_drops_nonwords(self):
        assert words("We collect 5 cookies.") == ["we", "collect", "cookies"]


class TestSentences:
    def test_basic_split(self):
        result = sentences("We collect data. We share data.")
        assert result == ["We collect data.", "We share data."]

    def test_abbreviation_not_split(self):
        result = sentences("We share data with partners, e.g. advertisers. We care.")
        assert len(result) == 2
        assert "e.g. advertisers" in result[0]

    def test_initials_not_split(self):
        result = sentences("We comply with U.S. federal law. We also comply abroad.")
        assert len(result) == 2

    def test_question_and_exclamation(self):
        result = sentences("Do we sell data? No! We never sell data.")
        assert len(result) == 3

    def test_newline_before_capital_splits(self):
        result = sentences("Information You Provide\nWe collect your name.")
        assert len(result) == 2

    def test_blank_line_splits(self):
        result = sentences("First block\n\nsecond block")
        assert result == ["First block", "second block"]

    def test_trailing_text_without_period(self):
        result = sentences("We collect data. We share")
        assert result[-1] == "We share"

    def test_spans_cover_content(self):
        text = "We collect data. We share data."
        for start, end in sentence_spans(text):
            assert text[start:end].strip()

    def test_closing_quote_stays_with_sentence(self):
        result = sentences('We call this "data." Next sentence here.')
        assert result[0].endswith('"')

    def test_whitespace_only(self):
        assert sentences("   \n \n") == []
