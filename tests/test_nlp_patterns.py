"""Unit tests for clause-level patterns."""

from repro.nlp.patterns import (
    ClauseSplit,
    find_main_verbs,
    find_receiver,
    looks_like_data_practice,
    split_conditions,
)


class TestSplitConditions:
    def test_leading_if_clause(self):
        split = split_conditions(
            "If you enable location services, we collect gps location."
        )
        assert split.conditions == ["If you enable location services"]
        assert split.main.startswith("we collect")

    def test_leading_clause_with_internal_commas(self):
        split = split_conditions(
            "When you create an account, upload content, or use the Platform, "
            "you may provide information."
        )
        assert len(split.conditions) == 1
        assert "upload content" in split.conditions[0]
        assert split.main.startswith("you may provide")

    def test_trailing_condition(self):
        split = split_conditions(
            "We disclose personal information to law enforcement when required by law."
        )
        assert any("required by law" in c for c in split.conditions)
        assert "law enforcement" in split.main

    def test_trailing_purpose_tail(self):
        split = split_conditions(
            "We share usage data with advertisers for legitimate business purposes."
        )
        assert any("legitimate business purposes" in p for p in split.purposes)
        assert split.main.endswith("advertisers")

    def test_no_condition(self):
        split = split_conditions("We collect your email address.")
        assert split.conditions == []
        assert split.purposes == []

    def test_unless_clause(self):
        split = split_conditions(
            "We share your data with partners unless you opt out in settings."
        )
        assert any(c.lower().startswith("unless") for c in split.conditions)

    def test_returns_clause_split_type(self):
        assert isinstance(split_conditions("We collect data."), ClauseSplit)


class TestFindMainVerbs:
    def test_single_verb(self):
        verbs = find_main_verbs("We collect your email")
        assert [b for _i, b in verbs] == ["collect"]

    def test_coordinated_verbs(self):
        verbs = find_main_verbs("TikTok will access and collect information")
        assert [b for _i, b in verbs] == ["access", "collect"]

    def test_inflected_verb(self):
        verbs = find_main_verbs("TikTok shares your data")
        assert [b for _i, b in verbs] == ["share"]

    def test_nominal_use_skipped(self):
        verbs = find_main_verbs("your use of the platform helps nothing")
        assert "use" not in [b for _i, b in verbs]

    def test_noun_modifier_context_skipped(self):
        # "contacts" after "phone" is a noun, not the verb "contact".
        verbs = find_main_verbs("we read your phone contacts")
        assert "contact" not in [b for _i, b in verbs]

    def test_subject_precedes_verb(self):
        verbs = find_main_verbs("the user provides email")
        assert [b for _i, b in verbs] == ["provide"]

    def test_sentence_initial_plural_noun_skipped(self):
        verbs = find_main_verbs("Purchases or other transactions you make")
        assert [b for _i, b in verbs] == ["make"]

    def test_no_verbs(self):
        assert find_main_verbs("email address and phone number") == []


class TestFindReceiver:
    def test_known_entity(self):
        assert find_receiver("We share data with advertisers") == "advertisers"

    def test_longest_entity_wins(self):
        receiver = find_receiver("We disclose data to law enforcement agencies")
        assert receiver == "law enforcement agencies"

    def test_no_sharing_verb(self):
        assert find_receiver("We collect data about you") is None

    def test_unknown_receiver_falls_back_to_np(self):
        receiver = find_receiver("We transfer data to our parent organization")
        assert receiver is not None


class TestLooksLikeDataPractice:
    def test_positive(self):
        assert looks_like_data_practice("We collect your email address.")

    def test_negative_short(self):
        assert not looks_like_data_practice("Privacy Policy")

    def test_negative_no_verb(self):
        assert not looks_like_data_practice("email address and phone number and cookies")
