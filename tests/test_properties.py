"""Property-based tests (hypothesis) for core data structures and invariants.

Each property pins a semantic guarantee the rest of the system leans on:
logical equivalence of simplification passes, CDCL agreement with brute
force, grounding semantics, taxonomy tree invariants, segmentation/diff
algebra, and morphology idempotence.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import Taxonomy
from repro.core.segmenter import Segment, diff_segments, segment_policy
from repro.fol.formula import (
    And,
    FalseFormula,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Predicate,
    PredicateSymbol,
    TrueFormula,
)
from repro.fol.simplify import simplify, to_nnf
from repro.fol.visitor import collect_predicates
from repro.nlp.morphology import lemmatize_verb, singularize_noun
from repro.solver.cnf import tseitin
from repro.solver.euf import parse_atom, parse_term
from repro.solver.literals import AtomPool
from repro.solver.result import SatResult
from repro.solver.sat import CDCLSolver

# ---------------------------------------------------------------------------
# Random propositional formulas over a small atom vocabulary
# ---------------------------------------------------------------------------

_ATOMS = [PredicateSymbol(name)() for name in ("p0", "p1", "p2", "p3")]


def _formulas(depth: int = 3) -> st.SearchStrategy[Formula]:
    base = st.sampled_from(_ATOMS + [TrueFormula(), FalseFormula()])

    def extend(children: st.SearchStrategy[Formula]) -> st.SearchStrategy[Formula]:
        return st.one_of(
            st.builds(Not, children),
            st.builds(lambda a, b: And((a, b)), children, children),
            st.builds(lambda a, b: Or((a, b)), children, children),
            st.builds(Implies, children, children),
            st.builds(Iff, children, children),
        )

    return st.recursive(base, extend, max_leaves=12)


def _evaluate(formula: Formula, assignment: dict[str, bool]) -> bool:
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, Predicate):
        return assignment[formula.symbol.name]
    if isinstance(formula, Not):
        return not _evaluate(formula.operand, assignment)
    if isinstance(formula, And):
        return all(_evaluate(op, assignment) for op in formula.operands)
    if isinstance(formula, Or):
        return any(_evaluate(op, assignment) for op in formula.operands)
    if isinstance(formula, Implies):
        return (not _evaluate(formula.antecedent, assignment)) or _evaluate(
            formula.consequent, assignment
        )
    if isinstance(formula, Iff):
        return _evaluate(formula.left, assignment) == _evaluate(
            formula.right, assignment
        )
    raise TypeError(formula)


def _all_assignments(formula: Formula):
    names = sorted({s.name for s in collect_predicates(formula)})
    for bits in itertools.product([False, True], repeat=len(names)):
        yield dict(zip(names, bits))


class TestSimplifyProperties:
    @given(_formulas())
    @settings(max_examples=200, deadline=None)
    def test_simplify_preserves_truth_table(self, formula):
        # simplify() may drop atoms, never add them, so the original
        # formula's assignments cover the simplified formula too.
        simplified = simplify(formula)
        for assignment in _all_assignments(formula):
            assert _evaluate(formula, assignment) == _evaluate(simplified, assignment)

    @given(_formulas())
    @settings(max_examples=200, deadline=None)
    def test_nnf_preserves_truth_table(self, formula):
        nnf = to_nnf(formula)
        for assignment in _all_assignments(formula):
            assert _evaluate(formula, assignment) == _evaluate(nnf, assignment)

    @given(_formulas())
    @settings(max_examples=100, deadline=None)
    def test_simplify_idempotent(self, formula):
        once = simplify(formula)
        assert simplify(once) == once

    @given(_formulas())
    @settings(max_examples=100, deadline=None)
    def test_nnf_has_no_implications(self, formula):
        from repro.fol.visitor import subformulas

        nnf = to_nnf(formula)
        for sub in subformulas(nnf):
            assert not isinstance(sub, (Implies, Iff))
            if isinstance(sub, Not):
                assert isinstance(sub.operand, Predicate)


class TestSATProperties:
    @given(_formulas())
    @settings(max_examples=150, deadline=None)
    def test_cdcl_agrees_with_truth_table(self, formula):
        expected = any(
            _evaluate(formula, a) for a in _all_assignments(formula)
        ) or not collect_predicates(formula) and _evaluate(formula, {})
        pool = AtomPool()
        clauses = tseitin(formula, pool)
        solver = CDCLSolver(pool.count)
        for clause in clauses:
            solver.add_clause(clause)
        got = solver.solve() is SatResult.SAT
        assert got == expected

    @given(_formulas())
    @settings(max_examples=80, deadline=None)
    def test_sat_model_satisfies_formula(self, formula):
        pool = AtomPool()
        clauses = tseitin(formula, pool)
        solver = CDCLSolver(pool.count)
        for clause in clauses:
            solver.add_clause(clause)
        if solver.solve() is SatResult.SAT:
            raw = solver.model()
            assignment = {
                key: raw.get(var, False) for key, var in pool.named_atoms().items()
            }
            # Atoms never mentioned default to False.
            for sym in collect_predicates(formula):
                assignment.setdefault(sym.name, False)
            assert _evaluate(formula, assignment)


class TestEUFParsingProperties:
    _names = st.text(alphabet="abcdefg_", min_size=1, max_size=6)

    @given(_names, st.lists(_names, min_size=0, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_atom_key_round_trip(self, name, args):
        key = f"{name}({','.join(args)})" if args else name
        parsed_name, parsed_args = parse_atom(key)
        assert parsed_name == name
        assert list(parsed_args) == args

    @given(_names, st.lists(_names, min_size=1, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_term_parse_children(self, fn, args):
        key = f"{fn}({','.join(args)})"
        node, nodes = parse_term(key)
        assert node.name == fn
        assert list(node.children) == args
        assert len(nodes) == len(args) + 1


class TestTaxonomyProperties:
    @given(st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_random_tree_invariants(self, parents):
        """Attach node i under a uniformly chosen earlier node: always a tree."""
        taxonomy = Taxonomy(root="root")
        names = ["root"]
        for i, p in enumerate(parents):
            parent = names[p % len(names)]
            name = f"n{i}"
            taxonomy.add(name, parent)
            names.append(name)
        taxonomy.validate()
        assert len(taxonomy) == len(parents) + 1
        for name in names[1:]:
            ancestors = taxonomy.ancestors(name)
            assert ancestors[-1] == "root"
            assert taxonomy.depth(name) == len(ancestors)
        # descendants/ancestors are inverse relations
        for name in names[1:]:
            for desc in taxonomy.descendants(name):
                assert name in taxonomy.ancestors(desc)


class TestSegmenterProperties:
    _sentences = st.lists(
        st.sampled_from(
            [
                "We collect your email address.",
                "We share usage data with partners.",
                "We retain logs for ninety days.",
                "You may provide your name.",
                "We delete inactive accounts.",
                "We disclose records to regulators.",
            ]
        ),
        min_size=0,
        max_size=6,
        unique=True,
    )

    @given(_sentences, _sentences)
    @settings(max_examples=100, deadline=None)
    def test_diff_partition(self, old_sents, new_sents):
        old = segment_policy(" ".join(old_sents))
        new = segment_policy(" ".join(new_sents))
        diff = diff_segments(old, new)
        # added + unchanged exactly covers the new version
        new_ids = {s.segment_id for s in new}
        assert {s.segment_id for s in diff.added} | {
            s.segment_id for s in diff.unchanged
        } == new_ids
        assert {s.segment_id for s in diff.added} & {
            s.segment_id for s in diff.unchanged
        } == set()
        # removed is disjoint from the new version
        assert all(s.segment_id not in new_ids for s in diff.removed)

    @given(st.text(min_size=0, max_size=120))
    @settings(max_examples=100, deadline=None)
    def test_segment_ids_deterministic(self, text):
        assert Segment.compute_id(text) == Segment.compute_id(text)
        assert len(Segment.compute_id(text)) == 16


class TestMorphologyProperties:
    _words = st.text(alphabet="abcdefghilmnoprstu", min_size=3, max_size=10)

    @given(_words)
    @settings(max_examples=150, deadline=None)
    def test_singularize_idempotent(self, word):
        once = singularize_noun(word)
        assert singularize_noun(once) == once

    @given(_words)
    @settings(max_examples=150, deadline=None)
    def test_lemmatize_converges_and_shrinks(self, word):
        # Repeated lemmatization reaches a fixpoint quickly (each pass
        # strips at most one suffix) and never grows the word by more than
        # the restored final 'e'.
        current = word
        for _ in range(6):
            after = lemmatize_verb(current)
            if after == current:
                break
            assert len(after) <= len(current) + 1
            current = after
        assert lemmatize_verb(current) == current
        assert current
