"""End-to-end stress campaign for the hardened provider boundary.

Chaos suites drive ``query_batch``, ``JobRunner`` checkpoint/resume, and
the serving daemon against the named profiles (``flaky-429``,
``brownout``, ``flapping``), asserting:

* **verdict determinism** — profiles are content-keyed, so every worker
  count sees identical faults and (with the retry budget covering the
  burst length) produces traces byte-identical to a fault-free run;
* **zero lost/duplicated checkpoint records** — a supervised job under
  rate-limit chaos commits exactly one journal record per question and
  resumes to byte-identical outcomes without re-executing anything;
* **bounded shed/giveup counts** — an under-provisioned retry budget
  converts exactly the designated prompts into giveups, identically at
  every worker count;
* **no wall-clock waits** — the brownout profile's seconds of injected
  latency all flow through the injectable ``sleep`` seam.

Plus the record→replay acceptance criterion: a batch against
``ReplayLLM`` is byte-identical to the recorded run at every worker
count.  Marked ``providers``: run with ``pytest -m providers``.
"""

from __future__ import annotations

import json

import pytest

from repro import PolicyPipeline
from repro.core.pipeline import ErrorOutcome
from repro.jobs import JobConfig, JobRunner, read_journal
from repro.jobs.checkpoint import JOURNAL_NAME
from repro.llm.client import CachedLLM, UsageStats
from repro.llm.simulated import SimulatedLLM
from repro.providers import (
    ProfiledLLM,
    RecordingLLM,
    ReplayLLM,
    get_profile,
)
from repro.resilience import CircuitBreaker, RetryingLLM, RetryPolicy

pytestmark = pytest.mark.providers

DISTINCT_QUERIES = [
    "Acme collects the email address.",
    "Acme collects the phone number.",
    "Does Acme collect my name?",
    "Acme shares the usage information with analytics providers.",
    "Acme shares the location information with advertisers.",
    "Acme sells the contact information.",
    "Law enforcement receives the personal information.",
    "Acme collects the message content.",
]
QUERY_SUITE = DISTINCT_QUERIES * 3  # 24 queries, repeats share prompts
WORKER_COUNTS = (1, 2, 8)


def _trace(outcome) -> str:
    return json.dumps(outcome.as_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def baseline(small_policy_text):
    """Fault-free traces per question, from a sequential query loop."""
    pipeline = PolicyPipeline()
    model = pipeline.process(small_policy_text)
    return {q: _trace(pipeline.query(model, q)) for q in DISTINCT_QUERIES}


@pytest.fixture(scope="module")
def small_model_fresh(small_policy_text):
    return PolicyPipeline().process(small_policy_text)


def _profiled_pipeline(profile_name, *, max_retries=2, sleeps=None):
    """A pipeline whose LLM boundary runs under a stress profile.

    All sleeps (injected latency *and* retry backoff) go to ``sleeps``
    so the chaos suites never wait on the wall clock; a shared
    UsageStats aggregates the whole stack.
    """
    recorded = sleeps if sleeps is not None else []
    stats = UsageStats()
    profiled = ProfiledLLM(
        SimulatedLLM(),
        get_profile(profile_name),
        sleep=recorded.append,
        stats=stats,
    )
    llm = CachedLLM(
        CircuitBreaker(
            RetryingLLM(
                profiled,
                RetryPolicy(max_retries=max_retries),
                stats=stats,
                sleep=recorded.append,
            ),
            stats=stats,
        )
    )
    return PolicyPipeline(llm=llm), stats


class TestProfiledBatchDeterminism:
    def test_suite_is_large_enough(self):
        assert len(QUERY_SUITE) >= 20

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_flaky_429_verdicts_match_fault_free_run(
        self, small_model_fresh, baseline, workers
    ):
        pipeline, stats = _profiled_pipeline("flaky-429")
        batch = pipeline.query_batch(
            small_model_fresh, QUERY_SUITE, max_workers=workers
        )
        assert batch.errors == []
        assert stats.faults_injected > 0
        # Every injected 429 was cleared by a retry, and the 0.25s
        # Retry-After hint beat the geometric schedule every time.
        assert stats.retries == stats.faults_injected
        assert stats.retry_after_honored == stats.retries
        assert stats.retry_giveups == 0
        for outcome in batch.outcomes:
            assert _trace(outcome) == baseline[outcome.question]

    def test_flapping_identical_across_worker_counts(self, small_model_fresh):
        runs = []
        for workers in WORKER_COUNTS:
            pipeline, stats = _profiled_pipeline("flapping")
            batch = pipeline.query_batch(
                small_model_fresh, QUERY_SUITE, max_workers=workers
            )
            runs.append(([_trace(o) for o in batch.outcomes], stats))
        reference_traces, reference_stats = runs[0]
        assert reference_stats.faults_injected > 0
        for traces, stats in runs[1:]:
            assert traces == reference_traces
            assert stats.faults_injected == reference_stats.faults_injected
            assert stats.retries == reference_stats.retries

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_starved_retry_budget_gives_up_deterministically(
        self, small_model_fresh, workers
    ):
        """flaky-429 bursts last 2 attempts; with a 1-retry budget the
        designated prompts give up — the same set at every worker count,
        and the giveup count is bounded by the designated-prompt count."""
        pipeline, stats = _profiled_pipeline("flaky-429", max_retries=1)
        batch = pipeline.query_batch(
            small_model_fresh, QUERY_SUITE, max_workers=workers
        )
        error_questions = sorted({o.question for o in batch.errors})
        assert error_questions, "the profile must designate some prompts"
        assert stats.retry_giveups > 0
        assert stats.retry_giveups <= stats.faults_injected
        for outcome in batch.outcomes:
            if isinstance(outcome, ErrorOutcome):
                assert outcome.error_type == "RateLimitError"
        # Re-run at the same worker count: identical giveup set (the
        # cross-worker identity is covered by the parametrization, since
        # designation is content-keyed, not schedule-keyed).
        pipeline2, _ = _profiled_pipeline("flaky-429", max_retries=1)
        batch2 = pipeline2.query_batch(
            small_model_fresh, QUERY_SUITE, max_workers=workers
        )
        assert sorted({o.question for o in batch2.errors}) == error_questions

    def test_brownout_latency_rides_the_sleep_seam(self, small_model_fresh):
        """The bugfix rider: seconds of injected brownout latency must be
        simulated through the seam, never slept on the wall clock."""
        sleeps: list[float] = []
        pipeline, stats = _profiled_pipeline("brownout", sleeps=sleeps)
        batch = pipeline.query_batch(
            small_model_fresh, QUERY_SUITE, max_workers=4
        )
        assert batch.errors == []
        injected = [s for s in sleeps if s > 0]
        assert sum(injected) > 1.0, "brownout must inject real latency"
        assert max(injected) > 1.5, "some prompts must slow-trickle"


class TestRecordReplayAcceptance:
    """A batch against ReplayLLM is byte-identical to the recorded run."""

    def test_batch_record_then_replay_byte_identical(
        self, small_model_fresh, tmp_path
    ):
        tape = tmp_path / "batch.jsonl"
        with RecordingLLM(SimulatedLLM(), tape) as recorder:
            pipeline = PolicyPipeline(llm=CachedLLM(recorder))
            recorded_batch = pipeline.query_batch(
                small_model_fresh, QUERY_SUITE, max_workers=2
            )
        recorded_traces = [_trace(o) for o in recorded_batch.outcomes]
        assert recorder.stats.cassette_records > 0

        for workers in WORKER_COUNTS:
            replay = ReplayLLM(tape, strict=True)
            pipeline = PolicyPipeline(llm=CachedLLM(replay))
            batch = pipeline.query_batch(
                small_model_fresh, QUERY_SUITE, max_workers=workers
            )
            assert [_trace(o) for o in batch.outcomes] == recorded_traces
            assert replay.stats.cassette_misses == 0

    def test_replay_under_profile_still_deterministic(
        self, small_model_fresh, tmp_path
    ):
        """Cassette replay composes under a stress profile: faults and
        retries happen, completions still come from the tape."""
        tape = tmp_path / "batch.jsonl"
        with RecordingLLM(SimulatedLLM(), tape) as recorder:
            pipeline = PolicyPipeline(llm=CachedLLM(recorder))
            recorded_batch = pipeline.query_batch(
                small_model_fresh, QUERY_SUITE, max_workers=1
            )
        recorded_traces = [_trace(o) for o in recorded_batch.outcomes]

        stats = UsageStats()
        profiled = ProfiledLLM(
            ReplayLLM(tape, strict=True),
            get_profile("flaky-429"),
            sleep=lambda _s: None,
            stats=stats,
        )
        pipeline = PolicyPipeline(
            llm=CachedLLM(
                RetryingLLM(profiled, stats=stats, sleep=lambda _s: None)
            )
        )
        batch = pipeline.query_batch(
            small_model_fresh, QUERY_SUITE, max_workers=4
        )
        assert stats.faults_injected > 0
        assert [_trace(o) for o in batch.outcomes] == recorded_traces


class TestCheckpointUnderChaos:
    def test_zero_lost_or_duplicated_records_and_clean_resume(
        self, small_model_fresh, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        pipeline, stats = _profiled_pipeline("flaky-429")
        runner = JobRunner(
            pipeline,
            small_model_fresh,
            JobConfig(max_workers=4, checkpoint_dir=str(ckpt)),
        )
        result = runner.run(QUERY_SUITE)
        assert result.aborted is False
        assert stats.faults_injected > 0
        original_traces = [_trace(o) for o in result.outcomes]

        # Zero lost, zero duplicated: exactly one trusted journal record
        # per question, covering every index once.
        recovery = read_journal(ckpt / JOURNAL_NAME)
        assert sorted(recovery.completed) == list(range(len(QUERY_SUITE)))
        assert recovery.duplicates == 0
        assert recovery.torn_tail is False
        assert result.metrics.checkpoint_records == len(QUERY_SUITE)

        # Resume restores everything byte-identically; nothing re-runs.
        resume_pipeline, resume_stats = _profiled_pipeline("flaky-429")
        resumed = JobRunner(
            resume_pipeline,
            small_model_fresh,
            JobConfig(max_workers=4, checkpoint_dir=str(ckpt)),
        ).resume()
        assert resumed.metrics.checkpoint_restored == len(QUERY_SUITE)
        assert resume_stats.faults_injected == 0  # no LLM work on resume
        assert [_trace(o) for o in resumed.outcomes] == original_traces


class TestServingUnderChaos:
    QUESTION = "The company collects the user's email address."

    @pytest.fixture()
    def chaos_server(self, tmp_path):
        from repro.registry import MintSpec, PolicyRegistry
        from repro.server import PolicyServer, ServerConfig

        root = tmp_path / "reg"
        PolicyRegistry(root, max_warm=8).mint(MintSpec(count=2, seed=29))
        pipeline, stats = _profiled_pipeline("flaky-429")
        server = PolicyServer(
            ServerConfig(
                root=root,
                port=0,
                max_pending=4,
                default_deadline=10.0,
                handle_signals=False,
            ),
            pipeline=pipeline,
        )
        server.start()
        yield server, stats
        server.stop()

    def test_serves_under_rate_limit_chaos_with_bounded_giveups(
        self, chaos_server
    ):
        from repro.server import ServingClient

        server, stats = chaos_server
        host, port = server.address
        client = ServingClient(host, port, timeout=10.0)
        try:
            company = server.companies()[0]
            verdicts = []
            for _ in range(3):
                status, body = client.query(company, self.QUESTION)
                assert status == 200
                verdicts.append(body["verdict"])
            # Identical answers every time, despite injected 429s.
            assert len(set(verdicts)) == 1
            assert stats.retry_giveups == 0

            payload = client.stats()
            assert "llm" in payload
            llm = payload["llm"]
            assert llm["breaker_state"] == "closed"
            assert llm["has_breaker"] is True
            usage = llm["usage"]
            assert usage["retry_giveups"] == 0
            metrics = payload["metrics"]
            assert metrics["breaker_state"] == "closed"
            assert metrics["llm_giveups"] == 0
        finally:
            client.close()
