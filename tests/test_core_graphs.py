"""Unit tests for the policy graph (Phase 2)."""

import pytest

from repro.core.graphs import (
    NODE_DATA,
    NODE_ENTITY,
    PolicyGraph,
    PracticeEdge,
    classify_node,
)
from repro.core.hierarchy import Taxonomy
from repro.core.parameters import annotate
from repro.llm.tasks import ExtractedParameters


def _practice(
    sender="acme",
    receiver=None,
    data_type="email address",
    action="collect",
    condition=None,
    permission=True,
    segment_id="seg1",
):
    params = ExtractedParameters(
        sender=sender,
        receiver=receiver,
        subject="user",
        data_type=data_type,
        action=action,
        condition=condition,
        permission=permission,
    )
    return annotate(params, segment_id=segment_id, segment_index=0)


class TestClassifyNode:
    def test_company_is_entity(self):
        assert classify_node("acme", "Acme") == NODE_ENTITY

    def test_user_is_entity(self):
        assert classify_node("user", "Acme") == NODE_ENTITY

    def test_lexicon_entity(self):
        assert classify_node("advertisers", "Acme") == NODE_ENTITY

    def test_data_phrase(self):
        assert classify_node("email address", "Acme") == NODE_DATA

    def test_other(self):
        assert classify_node("platform", "Acme") == NODE_ENTITY
        assert classify_node("something vague", "Acme") == "other"


class TestPolicyGraph:
    def test_practice_becomes_edge(self):
        graph = PolicyGraph("Acme")
        graph.add_practice(_practice())
        edges = graph.edges()
        assert len(edges) == 1
        assert edges[0].source == "acme"
        assert edges[0].action == "collect"
        assert edges[0].target == "email address"

    def test_receiver_creates_derived_edge(self):
        graph = PolicyGraph("Acme")
        graph.add_practice(_practice(action="share", receiver="advertisers"))
        edges = graph.edges()
        assert len(edges) == 2
        derived = [e for e in edges if e.derived]
        assert derived[0].source == "advertisers"
        assert derived[0].action == "receive"

    def test_denied_practice_no_derived_edge(self):
        graph = PolicyGraph("Acme")
        graph.add_practice(
            _practice(action="sell", receiver="advertisers", permission=False)
        )
        assert len(graph.edges()) == 1

    def test_condition_preserved_on_edge(self):
        graph = PolicyGraph("Acme")
        graph.add_practice(_practice(condition="with your consent"))
        assert graph.edges()[0].condition == "with your consent"
        assert graph.edges()[0].is_conditional

    def test_vague_terms_annotated(self):
        graph = PolicyGraph("Acme")
        graph.add_practice(_practice(condition="for legitimate business purposes"))
        edge = graph.edges()[0]
        assert ("legitimate business purposes", "legitimate_business_purpose") in edge.vague_terms

    def test_statistics(self):
        graph = PolicyGraph("Acme")
        graph.add_practice(_practice())
        graph.add_practice(
            _practice(action="share", receiver="advertisers", condition="with your consent")
        )
        graph.add_practice(_practice(action="sell", permission=False))
        stats = graph.statistics()
        assert stats.total_edges == 4  # 1 + 2 (share+derived) + 1
        assert stats.entities >= 2
        assert stats.data_types >= 1
        assert stats.negated_edges == 1
        assert stats.conditional_edges == 2  # share + derived receive
        assert stats.vague_edges == 2

    def test_remove_segment_drops_edges_and_orphans(self):
        graph = PolicyGraph("Acme")
        graph.add_practice(_practice(segment_id="keep", data_type="email"))
        graph.add_practice(_practice(segment_id="drop", data_type="gps location"))
        removed = graph.remove_segment("drop")
        assert removed == 1
        assert "gps location" not in graph.graph
        assert "email" in graph.graph

    def test_remove_unknown_segment_noop(self):
        graph = PolicyGraph("Acme")
        graph.add_practice(_practice())
        assert graph.remove_segment("nope") == 0
        assert len(graph.edges()) == 1

    def test_edges_touching(self):
        graph = PolicyGraph("Acme")
        graph.add_practice(_practice(data_type="email"))
        graph.add_practice(_practice(data_type="location"))
        touching = graph.edges_touching("email")
        assert len(touching) == 1
        assert graph.edges_touching("missing node") == []

    def test_data_closure_uses_taxonomy(self):
        taxonomy = Taxonomy(root="data")
        taxonomy.add("contact information", "data")
        taxonomy.add("email", "contact information")
        graph = PolicyGraph("Acme", data_taxonomy=taxonomy)
        closure = graph.data_closure("email")
        assert closure == {"email", "contact information"}

    def test_data_closure_without_taxonomy(self):
        graph = PolicyGraph("Acme")
        assert graph.data_closure("email") == {"email"}

    def test_describe_includes_negation(self):
        edge = PracticeEdge(
            source="acme",
            action="sell",
            target="email",
            receiver=None,
            condition=None,
            permission=False,
            segment_id="s",
        )
        assert edge.describe().startswith("NOT ")


class TestDotExport:
    def _graph(self):
        graph = PolicyGraph("Acme")
        graph.add_practices(
            [
                _practice(),
                _practice(action="share", receiver="advertisers",
                          condition="with your consent", segment_id="s2"),
                _practice(action="sell", permission=False, segment_id="s3"),
            ]
        )
        return graph

    def test_dot_structure(self):
        dot = self._graph().to_dot()
        assert dot.startswith("digraph policy {")
        assert dot.endswith("}")
        assert '"acme" [shape=box];' in dot
        assert '"email address" [shape=ellipse];' in dot

    def test_denied_edges_marked(self):
        dot = self._graph().to_dot()
        assert 'label="NOT sell", color=red, style=dashed' in dot

    def test_conditional_edges_dotted(self):
        dot = self._graph().to_dot()
        assert "style=dotted" in dot
        assert "with your consent" in dot

    def test_max_edges_truncation(self):
        dot = self._graph().to_dot(max_edges=1)
        assert "more edges" in dot

    def test_artifact_written(self, pipeline, small_model, tmp_path):
        pipeline.save_artifacts(small_model, tmp_path)
        dot = (tmp_path / "graph.dot").read_text("utf-8")
        assert dot.startswith("digraph policy {")
