"""Unit tests for the CDCL SAT core."""

import pytest

from repro.errors import BudgetExceededError
from repro.solver.result import SatResult
from repro.solver.sat import CDCLSolver, luby


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 10)] == [1, 1, 2, 1, 1, 2, 4, 1, 1]


class TestBasicSolving:
    def test_empty_problem_is_sat(self):
        assert CDCLSolver(0).solve() is SatResult.SAT

    def test_single_unit_clause(self):
        solver = CDCLSolver(1)
        solver.add_clause((1,))
        assert solver.solve() is SatResult.SAT
        assert solver.model()[1] is True

    def test_contradictory_units(self):
        solver = CDCLSolver(1)
        solver.add_clause((1,))
        solver.add_clause((-1,))
        assert solver.solve() is SatResult.UNSAT

    def test_implication_chain(self):
        solver = CDCLSolver(3)
        solver.add_clause((-1, 2))
        solver.add_clause((-2, 3))
        solver.add_clause((1,))
        assert solver.solve() is SatResult.SAT
        model = solver.model()
        assert model[1] and model[2] and model[3]

    def test_pigeonhole_2_in_1_unsat(self):
        # Two pigeons, one hole.
        solver = CDCLSolver(2)
        solver.add_clause((1,))
        solver.add_clause((2,))
        solver.add_clause((-1, -2))
        assert solver.solve() is SatResult.UNSAT

    def test_tautology_ignored(self):
        solver = CDCLSolver(1)
        assert solver.add_clause((1, -1))
        assert solver.solve() is SatResult.SAT

    def test_duplicate_literals_deduped(self):
        solver = CDCLSolver(1)
        solver.add_clause((1, 1, 1))
        assert solver.solve() is SatResult.SAT
        assert solver.model()[1] is True


class TestNontrivialInstances:
    def test_php_3_pigeons_2_holes(self):
        """Pigeonhole principle: 3 pigeons in 2 holes is UNSAT."""
        solver = CDCLSolver(6)
        # var(p, h) = 2*p + h + 1 for p in 0..2, h in 0..1
        def v(p, h):
            return 2 * p + h + 1

        for p in range(3):
            solver.add_clause((v(p, 0), v(p, 1)))
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    solver.add_clause((-v(p1, h), -v(p2, h)))
        assert solver.solve() is SatResult.UNSAT
        assert solver.stats.conflicts >= 1

    def test_graph_coloring_sat(self):
        """Triangle is 3-colorable."""
        solver = CDCLSolver(9)
        # var(node, color) = 3*node + color + 1
        def v(n, c):
            return 3 * n + c + 1

        for n in range(3):
            solver.add_clause(tuple(v(n, c) for c in range(3)))
            for c1 in range(3):
                for c2 in range(c1 + 1, 3):
                    solver.add_clause((-v(n, c1), -v(n, c2)))
        for a, b in [(0, 1), (1, 2), (0, 2)]:
            for c in range(3):
                solver.add_clause((-v(a, c), -v(b, c)))
        assert solver.solve() is SatResult.SAT
        model = solver.model()
        colors = [next(c for c in range(3) if model[v(n, c)]) for n in range(3)]
        assert len(set(colors)) == 3

    def test_triangle_not_2_colorable(self):
        solver = CDCLSolver(6)

        def v(n, c):
            return 2 * n + c + 1

        for n in range(3):
            solver.add_clause(tuple(v(n, c) for c in range(2)))
            solver.add_clause((-v(n, 0), -v(n, 1)))
        for a, b in [(0, 1), (1, 2), (0, 2)]:
            for c in range(2):
                solver.add_clause((-v(a, c), -v(b, c)))
        assert solver.solve() is SatResult.UNSAT


class TestAssumptions:
    def _make(self):
        solver = CDCLSolver(3)
        solver.add_clause((-1, 2))  # 1 -> 2
        solver.add_clause((-2, 3))  # 2 -> 3
        return solver

    def test_assumption_propagates(self):
        solver = self._make()
        assert solver.solve((1,)) is SatResult.SAT
        assert solver.model()[3] is True

    def test_conflicting_assumptions(self):
        solver = self._make()
        assert solver.solve((1, -3)) is SatResult.UNSAT

    def test_solver_reusable_after_assumptions(self):
        solver = self._make()
        assert solver.solve((1, -3)) is SatResult.UNSAT
        assert solver.solve((1,)) is SatResult.SAT
        assert solver.solve() is SatResult.SAT

    def test_assumption_of_unknown_var_grows_solver(self):
        solver = self._make()
        assert solver.solve((10,)) is SatResult.SAT
        assert solver.model()[10] is True


class TestBudgets:
    def _hard_instance(self, n=8):
        """PHP(n+1, n): exponentially hard for resolution-based solvers."""
        solver = CDCLSolver(
            (n + 1) * n, max_conflicts=20, max_propagations=None
        )

        def v(p, h):
            return p * n + h + 1

        for p in range(n + 1):
            solver.add_clause(tuple(v(p, h) for h in range(n)))
        for h in range(n):
            for p1 in range(n + 1):
                for p2 in range(p1 + 1, n + 1):
                    solver.add_clause((-v(p1, h), -v(p2, h)))
        return solver

    def test_conflict_budget_raises(self):
        solver = self._hard_instance()
        with pytest.raises(BudgetExceededError):
            solver.solve()

    def test_propagation_budget_raises(self):
        solver = CDCLSolver(3, max_propagations=1)
        solver.add_clause((1,))
        solver.add_clause((-1, 2))
        solver.add_clause((-2, 3))
        with pytest.raises(BudgetExceededError):
            solver.solve()

    def test_deadline_in_past_raises(self):
        solver = CDCLSolver(2, deadline=0.0)
        solver.add_clause((1, 2))
        with pytest.raises(BudgetExceededError):
            solver.solve()


class TestStatistics:
    def test_counters_increase(self):
        solver = CDCLSolver(3)
        solver.add_clause((1, 2))
        solver.add_clause((-1, 2))
        solver.add_clause((1, -2))
        solver.solve()
        assert solver.stats.propagations > 0


class TestLearnedClauseDBReduction:
    def _php(self, pigeons, holes, max_learned):
        solver = CDCLSolver(pigeons * holes)
        solver._max_learned = max_learned

        def v(p, h):
            return p * holes + h + 1

        for p in range(pigeons):
            solver.add_clause(tuple(v(p, h) for h in range(holes)))
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause((-v(p1, h), -v(p2, h)))
        return solver

    def test_reduction_triggered_and_answer_correct(self):
        solver = self._php(8, 7, max_learned=50)
        assert solver.solve() is SatResult.UNSAT
        assert solver.stats.db_reductions > 0
        assert solver.stats.learned_clauses > solver._max_learned

    def test_reduction_keeps_sat_answers_correct(self):
        # Graph coloring: SAT instance, aggressive cap.
        solver = CDCLSolver(30)
        solver._max_learned = 4

        def v(node, color):
            return 3 * node + color + 1

        edges = [(a, b) for a in range(10) for b in range(a + 1, 10) if (a + b) % 3]
        for node in range(10):
            solver.add_clause(tuple(v(node, c) for c in range(3)))
            for c1 in range(3):
                for c2 in range(c1 + 1, 3):
                    solver.add_clause((-v(node, c1), -v(node, c2)))
        for a, b in edges:
            for c in range(3):
                solver.add_clause((-v(a, c), -v(b, c)))
        result = solver.solve()
        if result is SatResult.SAT:
            model = solver.model()
            for a, b in edges:
                ca = next(c for c in range(3) if model[v(a, c)])
                cb = next(c for c in range(3) if model[v(b, c)])
                assert ca != cb

    def test_solver_reusable_after_reduction(self):
        solver = self._php(8, 7, max_learned=50)
        assert solver.solve() is SatResult.UNSAT
        # The root-level refutation persists across solves.
        assert solver.solve() is SatResult.UNSAT


class TestSeededPhases:
    """VSIDS decision-seed phases (the portfolio diversification knob)."""

    def test_seed_zero_is_the_legacy_all_false_policy(self):
        from repro.solver.sat import seeded_phase

        assert all(not seeded_phase(v, 0) for v in range(200))

    def test_seeded_phases_are_deterministic_and_diverse(self):
        from repro.solver.sat import seeded_phase

        for seed in (1, 2, 3, 17):
            first = [seeded_phase(v, seed) for v in range(200)]
            again = [seeded_phase(v, seed) for v in range(200)]
            assert first == again
            # A useful diversification seed flips a real fraction of
            # phases — neither all-False (seed 0's policy) nor all-True.
            flipped = sum(first)
            assert 20 < flipped < 180
        assert [seeded_phase(v, 1) for v in range(200)] != [
            seeded_phase(v, 2) for v in range(200)
        ]

    def test_seed_zero_solver_trace_is_byte_identical_to_default(self):
        def php(seed):
            solver = CDCLSolver(12, decision_seed=seed)
            def v(p, h):
                return 3 * p + h + 1
            for p in range(4):
                solver.add_clause(tuple(v(p, h) for h in range(3)))
            for h in range(3):
                for p1 in range(4):
                    for p2 in range(p1 + 1, 4):
                        solver.add_clause((-v(p1, h), -v(p2, h)))
            solver.solve()
            return solver.stats.as_dict()

        default = CDCLSolver(12)
        assert default._phases == CDCLSolver(12, decision_seed=0)._phases
        assert php(0) == php(0)

    def test_nonzero_seed_changes_the_search_not_the_answer(self):
        for seed in (0, 1, 2, 3):
            solver = CDCLSolver(6, decision_seed=seed)
            solver.add_clause((1, 2))
            solver.add_clause((-1, 3))
            solver.add_clause((-2, -3, 4))
            assert solver.solve() is SatResult.SAT
            model = solver.model()
            assert model[1] or model[2]
