"""Unit tests for the embedding substrate."""

import numpy as np
import pytest

from repro.embeddings import (
    EmbeddingModel,
    EmbeddingStore,
    cosine_similarity,
    edge_text,
    top_k,
)


@pytest.fixture(scope="module")
def model():
    return EmbeddingModel()


class TestEmbeddingModel:
    def test_deterministic_across_instances(self):
        a = EmbeddingModel().embed("email address")
        b = EmbeddingModel().embed("email address")
        assert np.allclose(a, b)

    def test_unit_norm(self, model):
        vec = model.embed("location information")
        assert np.isclose(np.linalg.norm(vec), 1.0)

    def test_empty_text_is_zero_vector(self, model):
        assert np.allclose(model.embed(""), 0.0)

    def test_shared_word_increases_similarity(self, model):
        related = model.similarity("email address", "email")
        unrelated = model.similarity("email address", "gps coordinates")
        assert related > unrelated

    def test_morphological_variants_close(self, model):
        assert model.similarity("cookies", "cookie") > 0.7

    def test_phrase_extension_close(self, model):
        assert model.similarity("location", "location information") > 0.5

    def test_self_similarity_is_one(self, model):
        assert np.isclose(model.similarity("data", "data"), 1.0)

    def test_case_insensitive(self, model):
        assert np.isclose(model.similarity("Email", "email"), 1.0)

    def test_different_model_names_differ(self):
        a = EmbeddingModel(name="model-a").embed("email")
        b = EmbeddingModel(name="model-b").embed("email")
        assert not np.allclose(a, b)

    def test_embed_many_shape(self, model):
        matrix = model.embed_many(["a", "b", "c"])
        assert matrix.shape == (3, model.dim)

    def test_embed_many_empty(self, model):
        assert model.embed_many([]).shape == (0, model.dim)


class TestCosineSimilarity:
    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector_yields_zero(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_identical(self):
        v = np.array([0.3, 0.4])
        assert np.isclose(cosine_similarity(v, v), 1.0)


class TestEmbeddingStore:
    def test_add_and_contains(self, model):
        store = EmbeddingStore(model)
        store.add("email")
        assert "email" in store
        assert len(store) == 1

    def test_add_idempotent(self, model):
        store = EmbeddingStore(model)
        store.add("email")
        store.add("email")
        assert len(store) == 1

    def test_get_embeds_on_demand(self, model):
        store = EmbeddingStore(model)
        vec = store.get("new term")
        assert "new term" in store
        assert np.isclose(np.linalg.norm(vec), 1.0)

    def test_matrix_rows_match_keys(self, model):
        store = EmbeddingStore(model)
        store.add_many(["a", "b"])
        matrix = store.matrix()
        assert matrix.shape[0] == 2
        assert np.allclose(matrix[0], store.get("a"))

    def test_save_load_round_trip(self, model, tmp_path):
        store = EmbeddingStore(model)
        store.add_many(["email", "phone number"])
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = EmbeddingStore.load(path)
        assert loaded.keys == store.keys
        assert np.allclose(loaded.matrix(), store.matrix())

    def test_save_load_empty_store(self, model, tmp_path):
        store = EmbeddingStore(model)
        path = tmp_path / "empty.npz"
        store.save(path)
        loaded = EmbeddingStore.load(path)
        assert loaded.keys == []
        assert len(loaded) == 0
        assert loaded.matrix().shape == (0, model.dim)

    def test_save_overwrites_existing_file(self, model, tmp_path):
        path = tmp_path / "store.npz"
        first = EmbeddingStore(model)
        first.add_many(["email", "phone number", "location"])
        first.save(path)
        second = EmbeddingStore(model)
        second.add("cookie")
        second.save(path)
        loaded = EmbeddingStore.load(path)
        assert loaded.keys == ["cookie"]

    def test_save_leaves_no_temp_files(self, model, tmp_path):
        store = EmbeddingStore(model)
        store.add("email")
        store.save(tmp_path / "store.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["store.npz"]

    def test_bytes_round_trip(self, model):
        store = EmbeddingStore(model)
        store.add_many(["email", "location"])
        clone = EmbeddingStore.from_bytes(store.to_bytes())
        assert clone.keys == store.keys
        assert np.allclose(clone.matrix(), store.matrix())

    def test_from_bytes_reuses_supplied_model(self, model):
        store = EmbeddingStore(model)
        store.add("email")
        clone = EmbeddingStore.from_bytes(store.to_bytes(), model=model)
        assert clone.model is model


class TestTopK:
    def test_exact_match_ranks_first(self, model):
        store = EmbeddingStore(model)
        store.add_many(["email", "phone number", "location"])
        hits = top_k(store, "email", k=3)
        assert hits[0].key == "email"
        assert np.isclose(hits[0].score, 1.0)

    def test_k_limits_results(self, model):
        store = EmbeddingStore(model)
        store.add_many([f"term {i}" for i in range(20)])
        assert len(top_k(store, "term 1", k=5)) == 5

    def test_min_score_filters(self, model):
        store = EmbeddingStore(model)
        store.add_many(["email", "zebra crossing"])
        hits = top_k(store, "email", k=10, min_score=0.9)
        assert [h.key for h in hits] == ["email"]

    def test_empty_store(self, model):
        assert top_k(EmbeddingStore(model), "email") == []

    def test_scores_descending(self, model):
        store = EmbeddingStore(model)
        store.add_many(["email address", "email", "phone number", "gps location"])
        hits = top_k(store, "email", k=4)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)


class TestEdgeText:
    def test_format(self):
        assert edge_text("user", "provide", "email") == "user provide email"
