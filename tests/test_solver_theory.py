"""Unit tests for the DPLL(T) integration layer."""

import pytest

from repro.errors import BudgetExceededError
from repro.solver.cnf import tseitin
from repro.solver.euf import EQ_PREDICATE
from repro.solver.literals import AtomPool
from repro.solver.result import SatResult
from repro.solver.sat import CDCLSolver
from repro.solver.theory import needs_theory, solve_with_theory
from repro.fol.formula import And, Not, PredicateSymbol
from repro.fol.terms import Constant, Sort

S = Sort("S")
A = Constant("a", S)
B = Constant("b", S)
C = Constant("c", S)
EQ = PredicateSymbol("=", (S, S))
P = PredicateSymbol("p", (S,))


def _solve(formula):
    pool = AtomPool()
    sat = CDCLSolver(0)
    for clause in tseitin(formula, pool):
        sat.add_clause(clause)
    sat.ensure_vars(pool.count)
    return solve_with_theory(sat, pool), pool


class TestNeedsTheory:
    def test_equality_atom_triggers(self):
        pool = AtomPool()
        pool.variable_for("=(a,b)")
        assert needs_theory(pool)

    def test_function_term_triggers(self):
        pool = AtomPool()
        pool.variable_for("p(f(a))")
        assert needs_theory(pool)

    def test_plain_atoms_do_not(self):
        pool = AtomPool()
        pool.variable_for("p(a)")
        pool.variable_for("flag")
        assert not needs_theory(pool)


class TestLazyLoop:
    def test_transitivity_chain_unsat(self):
        # a=b, b=c, p(a), not p(c): needs two theory rounds at most.
        formula = And((EQ(A, B), EQ(B, C), P(A), Not(P(C))))
        verdict, _pool = _solve(formula)
        assert verdict is SatResult.UNSAT

    def test_consistent_equalities_sat(self):
        formula = And((EQ(A, B), P(A), P(B)))
        verdict, _pool = _solve(formula)
        assert verdict is SatResult.SAT

    def test_disequality_requires_distinctness(self):
        # not a=b alone is satisfiable in EUF (a and b may differ).
        formula = Not(EQ(A, B))
        verdict, _pool = _solve(formula)
        assert verdict is SatResult.SAT

    def test_blocking_clauses_force_alternative_models(self):
        # (a=b or p(a)) and not p(b): if the solver first tries a=b with
        # p(a) true it hits a theory conflict and must find another model.
        formula = And(((EQ(A, B) | P(A)), Not(P(B))))
        pool = AtomPool()
        sat = CDCLSolver(0)
        for clause in tseitin(formula, pool):
            sat.add_clause(clause)
        sat.ensure_vars(pool.count)
        stats = sat.stats
        verdict = solve_with_theory(sat, pool, stats=stats)
        assert verdict is SatResult.SAT
        assert stats.theory_checks >= 1

    def test_theory_stats_counted(self):
        formula = And((EQ(A, B), P(A), Not(P(B))))
        pool = AtomPool()
        sat = CDCLSolver(0)
        for clause in tseitin(formula, pool):
            sat.add_clause(clause)
        sat.ensure_vars(pool.count)
        verdict = solve_with_theory(sat, pool)
        assert verdict is SatResult.UNSAT
        assert sat.stats.theory_conflicts >= 1
