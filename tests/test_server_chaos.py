"""Deterministic chaos suites for the serving daemon (``-m serving``).

Each scenario is the acceptance proof for one PR 7 robustness headline,
driven through real sockets on 127.0.0.1 but made deterministic the way
the job-runner chaos suite is: the ``query_fn`` seam blocks on events
instead of sleeping, so "under load" means "provably in flight", not
"hopefully still running".

* **overload storm** — with the shed watermark crossed, every excess
  request gets a *fast* structured 503 while the admitted ones still
  complete within their deadlines; nothing hangs.
* **reload under load** — a registry hot-swap during a pinned in-flight
  query loses zero requests; the in-flight answer comes from the old
  epoch/revision, the next request observes the new one.
* **drain under load** — ``POST /drain`` refuses new work immediately,
  finishes everything already admitted, and reports both counts.
* **kill mid-request** — a hard stop with a request on the wire never
  corrupts the on-disk registry: a fresh daemon on the same root serves
  correct answers immediately.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import PolicyPipeline, PolicyServer, ServerConfig, ServingClient
from repro.registry import MintSpec, PolicyRegistry

pytestmark = pytest.mark.serving

QUESTION = "The company collects the user's email address."

UPDATED_POLICY = """\
Updated Privacy Policy. We collect your name and email address. We share \
your usage information with analytics providers. We retain your email \
address while your account is active. We collect your precise location \
and share it with advertisers with your consent.
"""


def mint_root(pipeline, tmp_path, count=3, seed=31):
    root = tmp_path / "reg"
    registry = PolicyRegistry(root, pipeline=pipeline, max_warm=8)
    report = registry.mint(MintSpec(count=count, seed=seed, target_words=(340,)))
    assert len(report.minted) == count
    return root


class GatedQueries:
    """A ``query_fn`` whose in-flight requests park on an event until
    released — deterministic load, no sleeps."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Semaphore(0)
        self.pipeline = PolicyPipeline()

    def __call__(self, model, question, budget, certify):
        self.entered.release()
        assert self.release.wait(timeout=30.0), "test forgot to release"
        return self.pipeline.query(model, question, budget=budget, certify=certify)

    def wait_in_flight(self, n: int) -> None:
        for _ in range(n):
            assert self.entered.acquire(timeout=10.0), "request never started"


def start_server(root, *, query_fn=None, **overrides) -> PolicyServer:
    defaults = dict(
        root=root,
        port=0,
        max_pending=4,
        default_deadline=15.0,
        warm_on_start=-1,
        handle_signals=False,
    )
    defaults.update(overrides)
    server = PolicyServer(
        ServerConfig(**defaults), pipeline=PolicyPipeline(), query_fn=query_fn
    )
    server.start()
    return server


def query_in_thread(server, company, results, key, **kwargs):
    host, port = server.address

    def run():
        client = ServingClient(host, port, timeout=30.0)
        try:
            results[key] = client.query(company, QUESTION, **kwargs)
        except OSError as exc:  # killed mid-request
            results[key] = exc
        finally:
            client.close()

    thread = threading.Thread(target=run, name=f"chaos-{key}")
    thread.start()
    return thread


class TestOverloadStorm:
    def test_storm_sheds_fast_while_admitted_requests_complete(
        self, pipeline, tmp_path
    ):
        gated = GatedQueries()
        server = start_server(
            mint_root(pipeline, tmp_path),
            query_fn=gated,
            max_pending=4,
            shed_above=2,
        )
        try:
            company = server.companies()[0]
            results: dict[str, object] = {}

            in_flight = [
                query_in_thread(server, company, results, f"admitted-{i}")
                for i in range(2)
            ]
            gated.wait_in_flight(2)

            # The storm: every request past the watermark must be refused
            # in bounded time with a structured body — while the two
            # admitted requests are still provably parked in flight.
            host, port = server.address
            storm_client = ServingClient(host, port, timeout=10.0)
            try:
                started = time.monotonic()
                storm = [
                    storm_client.query(company, QUESTION) for _ in range(6)
                ]
                storm_seconds = time.monotonic() - started
            finally:
                storm_client.close()

            assert storm_seconds < 5.0, "sheds must be fast, not queued"
            for status, body in storm:
                assert status == 503
                assert body["error"] == "shed"
                assert body["verdict"] == "UNKNOWN"
                assert body["shed"]["shed_above"] == 2

            gated.release.set()
            for t in in_flight:
                t.join(timeout=30.0)
                assert not t.is_alive()
            for i in range(2):
                status, body = results[f"admitted-{i}"]
                assert status == 200, "admitted requests must still finish"

            stats = server.stats()
            assert stats["queue"]["shed"] == 6
            assert stats["queue"]["admitted"] == 2
            assert stats["queue"]["depth"] == 0
            assert stats["metrics"]["server_requests"] == 2
        finally:
            gated.release.set()
            server.stop()

    def test_unshedded_overflow_waits_then_wins_a_slot(self, pipeline, tmp_path):
        # Without a watermark the overflow request waits (bounded by its
        # deadline) and is admitted as soon as a slot frees — backpressure,
        # not refusal.
        gated = GatedQueries()
        server = start_server(
            mint_root(pipeline, tmp_path, count=2, seed=37),
            query_fn=gated,
            max_pending=1,
            shed_above=None,
        )
        try:
            company = server.companies()[0]
            results: dict[str, object] = {}
            first = query_in_thread(server, company, results, "first")
            gated.wait_in_flight(1)
            overflow = query_in_thread(server, company, results, "overflow")
            time.sleep(0.1)
            assert overflow.is_alive(), "overflow should be waiting for a slot"

            gated.release.set()
            first.join(timeout=30.0)
            overflow.join(timeout=30.0)
            assert results["first"][0] == 200
            assert results["overflow"][0] == 200
            assert server.gate.admitted == 2
        finally:
            gated.release.set()
            server.stop()


class TestReloadUnderLoad:
    def test_zero_loss_and_new_revision_visible(self, pipeline, tmp_path):
        root = mint_root(pipeline, tmp_path, count=2, seed=41)
        gated = GatedQueries()
        server = start_server(root, query_fn=gated)
        try:
            company = server.companies()[0]
            host, port = server.address
            results: dict[str, object] = {}

            pinned = query_in_thread(server, company, results, "pinned")
            gated.wait_in_flight(1)

            # Out-of-band revision bump: the successor snapshot lands on
            # disk while the old epoch still holds the old model warm.
            side = PolicyRegistry(root, pipeline=pipeline)
            model = side.get_model(company)
            old_revision = model.revision
            updated, _ = pipeline.update(model, UPDATED_POLICY)
            side.store_for(company).commit_update(updated)

            control = ServingClient(host, port, timeout=10.0)
            try:
                status, reload_body = control.reload()
                assert status == 200
                assert reload_body["new_epoch"] == 1
                assert reload_body["pinned"] == 1, "in-flight pin must be visible"

                stats = control.stats()
                assert stats["epoch"] == 1
                assert stats["retiring"] == [[0, 1]], (
                    "old epoch must drain via the retiring list, not vanish"
                )

                gated.release.set()
                pinned.join(timeout=30.0)
                assert not pinned.is_alive()

                # Zero loss: the pinned request finished against its old
                # epoch and old revision.
                status, body = results["pinned"]
                assert status == 200
                assert body["epoch"] == 0
                assert body["revision"] == old_revision

                # The very next request observes the reloaded registry.
                status, body = control.query(company, QUESTION)
                assert status == 200
                assert body["epoch"] == 1
                assert body["revision"] == old_revision + 1

                assert control.stats()["retiring"] == []
            finally:
                control.close()
        finally:
            gated.release.set()
            server.stop()


class TestDrainUnderLoad:
    def test_http_drain_finishes_in_flight_and_refuses_new(
        self, pipeline, tmp_path
    ):
        gated = GatedQueries()
        server = start_server(
            mint_root(pipeline, tmp_path), query_fn=gated, max_pending=4
        )
        try:
            company = server.companies()[0]
            host, port = server.address
            results: dict[str, object] = {}

            in_flight = [
                query_in_thread(server, company, results, f"inflight-{i}")
                for i in range(3)
            ]
            gated.wait_in_flight(3)

            control = ServingClient(host, port, timeout=10.0)
            try:
                status, body = control.drain()
                assert status == 202 and body["initiated"] is True
                status, body = control.drain()  # idempotent over HTTP too
                assert status == 202 and body["initiated"] is False

                status, body = control.query(company, QUESTION)
                assert status == 503 and body["error"] == "draining"
                assert control.readyz()[0] == 503
                assert control.healthz()[0] == 200
            finally:
                control.close()

            gated.release.set()
            report = server.await_drained(timeout=30.0)
            for t in in_flight:
                t.join(timeout=30.0)

            assert report.drained_clean
            assert report.reason == "http"
            assert report.in_flight_at_drain == 3
            assert report.completed_during_drain == 3
            assert report.refused_during_drain == 1
            for i in range(3):
                assert results[f"inflight-{i}"][0] == 200
        finally:
            gated.release.set()
            server.stop()


class TestKillMidRequest:
    def test_hard_kill_then_clean_restart_on_same_root(self, pipeline, tmp_path):
        root = mint_root(pipeline, tmp_path, count=2, seed=43)
        gated = GatedQueries()
        server = start_server(root, query_fn=gated)
        company = server.companies()[0]
        results: dict[str, object] = {}

        victim = query_in_thread(server, company, results, "victim")
        gated.wait_in_flight(1)

        # Hard stop with the request still on the wire — no drain, the
        # moral equivalent of SIGKILL for everything but the test process.
        server.stop()
        gated.release.set()
        victim.join(timeout=30.0)
        assert not victim.is_alive()
        # The victim either got its answer out through the already-open
        # socket or saw the connection die; both are acceptable for a
        # kill.  What is NOT acceptable is hanging or corrupting state.
        outcome = results["victim"]
        assert isinstance(outcome, (tuple, OSError))

        # A fresh daemon on the same root must come up and answer
        # immediately: the kill touched no durable state.
        reborn = start_server(root)
        try:
            host, port = reborn.address
            client = ServingClient(host, port, timeout=10.0)
            try:
                assert client.companies() == sorted(client.companies())
                status, body = client.query(company, QUESTION)
                assert status == 200
                assert body["verdict"] in {"VALID", "INVALID", "UNKNOWN"}
                status, fleet_body = client.fleet(QUESTION)
                assert status == 200
                assert fleet_body["aborted"] is False
            finally:
                client.close()
        finally:
            reborn.stop()
