"""Fleet fan-out determinism: worker counts and kill/resume parity.

The acceptance bar for ``registry.query_fleet`` is byte-identity of the
:class:`~repro.registry.fleet.FleetReport` serialization across every
execution shape: 1, 2, and 8 workers must produce the same
``report.digest()``, and a fleet killed mid-run and resumed from its
checkpoint must reproduce that same digest while re-running only the
companies whose verdicts never reached the journal.
"""

from __future__ import annotations

import pytest

from repro import JobConfig, JobError
from repro.jobs import CheckpointedOutcome
from repro.registry import FleetReport, MintSpec, PolicyRegistry
from repro.store.faults import CrashInjector, SimulatedCrash

pytestmark = pytest.mark.fleet

QUESTION = "The company shares the email address with advertisers."
SPEC = MintSpec(count=6, seed=21, target_words=(340,))


@pytest.fixture(scope="module")
def registry(pipeline, tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet") / "reg"
    registry = PolicyRegistry(root, pipeline=pipeline, max_warm=16)
    report = registry.mint(SPEC)
    assert len(report.minted) == SPEC.count
    return registry


@pytest.fixture(scope="module")
def baseline(registry) -> FleetReport:
    return registry.query_fleet(QUESTION, config=JobConfig(max_workers=1))


class TestWorkerCountParity:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_digest_is_worker_count_invariant(
        self, registry, baseline, workers
    ):
        report = registry.query_fleet(
            QUESTION, config=JobConfig(max_workers=workers)
        )
        assert report.digest() == baseline.digest()

    def test_report_shape(self, registry, baseline):
        assert len(baseline) == SPEC.count
        assert baseline.companies == registry.companies()
        assert not baseline.aborted
        assert baseline.pending_companies == []
        assert baseline.errors == []
        counts = baseline.verdict_counts()
        assert sum(counts.values()) == SPEC.count
        payload = baseline.as_dict()
        # The byte-identity surface must not leak execution shape.
        for banned in ("seconds", "max_workers", "restored", "metrics"):
            assert banned not in payload
        for row in payload["companies"]:
            assert set(row) == {"company", "verdict", "trace"}

    def test_subset_roster_digest_is_stable(self, registry):
        roster = registry.companies()[:3]
        first = registry.query_fleet(
            QUESTION, roster, config=JobConfig(max_workers=1)
        )
        second = registry.query_fleet(
            QUESTION, roster, config=JobConfig(max_workers=2)
        )
        assert first.digest() == second.digest()
        assert first.digest() != registry.query_fleet(
            QUESTION, config=JobConfig(max_workers=1)
        ).digest()  # roster is part of the identity


class TestKillResumeParity:
    def _config(self, tmp_path, workers=1):
        return JobConfig(
            max_workers=workers,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_fsync=True,
        )

    def test_resume_reproduces_baseline_bytes(
        self, pipeline, registry, baseline, tmp_path, monkeypatch
    ):
        # Kill after the second company's verdict record is durable.
        injector = CrashInjector("sync:record:1")
        with pytest.raises(SimulatedCrash):
            registry.query_fleet(
                QUESTION,
                config=self._config(tmp_path),
                journal_step=injector,
            )

        # The resumed run must query only the four pending companies.
        queried: list[str] = []
        original = pipeline.query

        def counting_query(model, question, **kwargs):
            queried.append(model.company)
            return original(model, question, **kwargs)

        monkeypatch.setattr(pipeline, "query", counting_query)
        resumed = registry.resume_fleet(QUESTION, config=self._config(tmp_path))
        monkeypatch.undo()

        assert resumed.job.restored == 2
        assert sorted(queried) == registry.companies()[2:]
        assert resumed.digest() == baseline.digest()
        # Restored verdicts surface as CheckpointedOutcome markers.
        restored = [
            o for o in resumed.outcomes if isinstance(o, CheckpointedOutcome)
        ]
        assert len(restored) == 2
        assert {o.restored for o in restored} == {True}

    def test_resume_with_different_question_refused(self, registry, tmp_path):
        injector = CrashInjector("sync:record:0")
        with pytest.raises(SimulatedCrash):
            registry.query_fleet(
                QUESTION, config=self._config(tmp_path), journal_step=injector
            )
        with pytest.raises(JobError):
            registry.resume_fleet(
                "The company sells the location history.",
                config=self._config(tmp_path),
            )

    def test_resume_with_different_roster_refused(self, registry, tmp_path):
        injector = CrashInjector("sync:record:0")
        with pytest.raises(SimulatedCrash):
            registry.query_fleet(
                QUESTION, config=self._config(tmp_path), journal_step=injector
            )
        with pytest.raises(JobError):
            registry.resume_fleet(
                QUESTION,
                registry.companies()[:3],
                config=self._config(tmp_path),
            )

    def test_fresh_run_refuses_existing_checkpoint(self, registry, tmp_path):
        config = self._config(tmp_path)
        registry.query_fleet(QUESTION, config=config)
        with pytest.raises(JobError):
            registry.query_fleet(QUESTION, config=config)

    def test_resume_of_completed_fleet_runs_nothing(
        self, pipeline, registry, baseline, tmp_path, monkeypatch
    ):
        config = self._config(tmp_path)
        registry.query_fleet(QUESTION, config=config)

        def exploding_query(model, question, **kwargs):
            raise AssertionError("completed fleet must not re-query")

        monkeypatch.setattr(pipeline, "query", exploding_query)
        resumed = registry.resume_fleet(QUESTION, config=config)
        monkeypatch.undo()
        assert resumed.job.restored == SPEC.count
        assert resumed.digest() == baseline.digest()
