"""Self-healing repair: repairable damage heals to byte-identical
verdicts; unrepairable damage is quarantined with provenance, never
silently served."""

from __future__ import annotations

import json

import pytest

from repro.core.verify import Verdict
from repro.errors import IntegrityError, SnapshotError
from repro.integrity import plan_repairs, run_fsck
from repro.integrity.faults import flip_bit, truncate_tail, zero_block
from repro.jobs.checkpoint import (
    JOURNAL_NAME,
    CheckpointJournal,
    journal_line,
    read_journal,
)
from repro.providers.cassette import (
    cassette_line,
    load_cassette,
    sidecar_path,
)
from repro.store.snapshot import SnapshotStore

pytestmark = pytest.mark.integrity

QUESTION = "The company collects the user's email address."


def verdict_bytes(pipeline, model, question=QUESTION) -> str:
    return json.dumps(pipeline.query(model, question).as_dict(), sort_keys=True)


def repair(root, *, rebuilder=None):
    plan = plan_repairs(run_fsck(root))
    plan.apply(rebuilder=rebuilder)
    return plan


class TestStoreRepair:
    def test_corrupt_current_heals_to_byte_identical_verdicts(
        self, tmp_path, pipeline, small_model
    ):
        store = SnapshotStore(tmp_path / "store")
        store.commit(small_model)
        store.commit(small_model)
        baseline = verdict_bytes(pipeline, small_model)
        zero_block(store.snapshots_dir / store.current_id() / "embeddings.npz")

        plan = repair(tmp_path / "store")
        assert not plan.unrepairable
        assert {a.status for a in plan.actions} == {"applied"}
        after = run_fsck(tmp_path / "store")
        assert after.clean, after.summary()
        assert after.scanned["quarantined"] == 1  # provenance preserved

        healed = pipeline.load_model(tmp_path / "store")
        assert verdict_bytes(pipeline, healed) == baseline

    def test_unrepairable_store_never_silently_served(
        self, tmp_path, pipeline, small_model
    ):
        store = SnapshotStore(tmp_path / "store")
        store.commit(small_model)
        flip_bit(store.snapshots_dir / store.current_id() / "graph.json")

        plan = repair(tmp_path / "store")
        assert plan.unrepairable  # data was lost; the operator must know
        # The damage is quarantined, not patched over: a load refuses
        # loudly instead of serving corrupt bytes.
        with pytest.raises(SnapshotError):
            pipeline.load_model(tmp_path / "store")
        quarantine = tmp_path / "store" / "quarantine"
        assert any(quarantine.iterdir())

    def test_rebuilder_recommits_byte_identical_model(
        self, tmp_path, pipeline, small_model, small_policy_text
    ):
        store = SnapshotStore(tmp_path / "store")
        store.commit(small_model)
        baseline = verdict_bytes(pipeline, small_model)
        flip_bit(store.snapshots_dir / store.current_id() / "graph.json")

        plan = repair(
            tmp_path / "store",
            rebuilder=lambda root: pipeline.process(small_policy_text),
        )
        rebuilt = [a for a in plan.actions if a.action == "rebuild-store"]
        assert rebuilt and rebuilt[0].status == "applied"
        assert run_fsck(tmp_path / "store").clean
        healed = pipeline.load_model(tmp_path / "store")
        assert verdict_bytes(pipeline, healed) == baseline

    def test_pending_journal_and_staging_resolved(self, tmp_path, small_model):
        store = SnapshotStore(tmp_path / "store")
        store.commit(small_model)
        staging = store.snapshots_dir / ".tmp-snap-000099"
        staging.mkdir()
        (staging / "partial.json").write_text("{}", encoding="utf-8")

        before = run_fsck(tmp_path / "store")
        assert not before.clean
        plan = repair(tmp_path / "store")
        assert any(a.action == "gc-staging" for a in plan.actions)
        assert run_fsck(tmp_path / "store").clean
        assert not staging.exists()

    def test_plan_cannot_be_applied_twice(self, tmp_path, small_model):
        store = SnapshotStore(tmp_path / "store")
        store.commit(small_model)
        store.commit(small_model)
        zero_block(store.snapshots_dir / store.current_id() / "graph.json")
        plan = repair(tmp_path / "store")
        with pytest.raises(IntegrityError):
            plan.apply()


class TestRegistryRepair:
    @pytest.fixture()
    def fleet(self, pipeline, tmp_path):
        from repro.registry import MintSpec, PolicyRegistry

        root = tmp_path / "reg"
        registry = PolicyRegistry(root, pipeline=pipeline)
        registry.mint(MintSpec(count=2, seed=37, target_words=(340,)))
        return root

    def test_dangling_entry_dropped_with_provenance(self, fleet):
        import shutil

        from repro.registry.manifest import read_manifest

        victim_dir = sorted((fleet / "shards").rglob("CURRENT"))[0].parent
        shutil.rmtree(victim_dir)
        plan = repair(fleet)
        drops = [a for a in plan.actions if a.action == "drop-entry"]
        assert drops and drops[0].status == "applied"
        assert run_fsck(fleet).clean
        assert len(read_manifest(fleet).entries) == 1
        provenance = list((fleet / "quarantine").glob("dropped-entry-*.json"))
        assert provenance
        payload = json.loads(provenance[0].read_text("utf-8"))
        assert payload["entry"]["company"] == drops[0].subject

    def test_orphan_store_adopted_back(self, fleet):
        from repro.registry.manifest import read_manifest

        manifest_path = fleet / "REGISTRY.json"
        payload = json.loads(manifest_path.read_text("utf-8"))
        dropped = sorted(payload["companies"])[0]
        del payload["companies"][dropped]
        manifest_path.write_text(json.dumps(payload), encoding="utf-8")

        plan = repair(fleet)
        adopts = [a for a in plan.actions if a.action == "adopt-store"]
        assert adopts and adopts[0].status == "applied"
        assert run_fsck(fleet).clean
        assert dropped in read_manifest(fleet).entries

    def test_unreadable_manifest_rebuilt_from_stores(self, fleet, pipeline):
        from repro.registry import PolicyRegistry
        from repro.registry.manifest import read_manifest

        before = read_manifest(fleet)
        zero_block(fleet / "REGISTRY.json")
        plan = repair(fleet)
        rebuilds = [a for a in plan.actions if a.action == "rebuild-manifest"]
        assert rebuilds and rebuilds[0].status == "applied"
        assert run_fsck(fleet).clean
        after = read_manifest(fleet)
        assert sorted(after.entries) == sorted(before.entries)
        for company, entry in after.entries.items():
            assert entry.store_dir == before.entries[company].store_dir
            assert entry.shard == before.entries[company].shard
        # The rebuilt index serves queries again.
        registry = PolicyRegistry(fleet, pipeline=pipeline)
        model = registry.get_model(sorted(after.entries)[0])
        assert model is not None
        # The damaged original is provenance, not garbage.
        assert (fleet / "quarantine" / "REGISTRY.json.corrupt").exists()

    def test_wrong_shard_recorded_is_rewritten(self, fleet):
        from repro.registry.manifest import read_manifest

        manifest_path = fleet / "REGISTRY.json"
        payload = json.loads(manifest_path.read_text("utf-8"))
        company = sorted(payload["companies"])[0]
        payload["companies"][company]["shard"] = "shard-63"
        manifest_path.write_text(json.dumps(payload), encoding="utf-8")

        plan = repair(fleet)
        rewrites = [a for a in plan.actions if a.action == "rewrite-entry"]
        assert rewrites and rewrites[0].status == "applied"
        entry = read_manifest(fleet).entries[company]
        assert entry.shard != "shard-63"


class TestCheckpointRepair:
    def _journal(self, directory):
        with CheckpointJournal(directory, fsync=False) as journal:
            journal.write_header(
                ["q0", "q1", "q2", "q3"], company="Acme", revision=1
            )
            for index in range(4):
                journal.append_result(
                    index,
                    f"q{index}",
                    "outcome",
                    Verdict.VALID,
                    {"verdict": "VALID", "question": f"q{index}"},
                )
        return directory / JOURNAL_NAME

    def test_torn_tail_truncated_resume_state_identical(self, tmp_path):
        journal = self._journal(tmp_path)
        damaged_trust = read_journal(journal)  # prefix-trust on the tear
        truncate_tail(journal, keep_fraction=0.95)
        damaged_trust = read_journal(journal)

        plan = repair(tmp_path)
        assert [a.action for a in plan.actions] == ["truncate-tail"]
        assert run_fsck(tmp_path).clean
        healed = read_journal(journal)
        assert not healed.torn_tail
        assert healed.completed.keys() == damaged_trust.completed.keys()

    def test_mid_file_corruption_compacts_to_trusted_prefix(self, tmp_path):
        journal = self._journal(tmp_path)
        trusted_before = read_journal(journal)
        zero_block(journal, offset=len(journal.read_bytes()) // 2, length=16)
        trusted_damaged = read_journal(journal)  # what resume would trust

        plan = repair(tmp_path)
        assert [a.action for a in plan.actions] == ["compact-journal"]
        assert run_fsck(tmp_path).clean
        healed = read_journal(journal)
        # Compaction preserves exactly the trusted prefix — resume after
        # repair re-executes the same pending set as resume before it.
        assert healed.completed.keys() == trusted_damaged.completed.keys()
        assert set(healed.completed) <= set(trusted_before.completed)
        corrupt_copy = journal.with_name(journal.name + ".corrupt")
        assert corrupt_copy.exists()  # damaged original kept as provenance

    def test_headerless_journal_quarantined(self, tmp_path):
        record = {
            "kind": "outcome",
            "index": 0,
            "question": "q0",
            "verdict": "VALID",
            "trace": {},
        }
        journal = tmp_path / JOURNAL_NAME
        journal.write_text(journal_line(record) + "\n", encoding="utf-8")
        report = run_fsck(tmp_path)
        assert report.unrepairable
        plan = plan_repairs(report)
        plan.apply()
        assert [a.action for a in plan.actions] == ["quarantine-journal"]
        assert not journal.exists()
        assert journal.with_name(journal.name + ".corrupt").exists()


class TestCassetteRepair:
    def _cassette(self, path, entries=4):
        lines = [
            cassette_line(f"prompt number {i}", f"completion number {i}")
            for i in range(entries)
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_damaged_lines_compact_away_valid_lines_verbatim(self, tmp_path):
        cassette = tmp_path / "tape.jsonl"
        self._cassette(cassette)
        table_before, _ = load_cassette(cassette)
        flip_bit(cassette)  # lands mid-file in one envelope

        plan = repair(cassette)
        assert [a.action for a in plan.actions] == ["compact-cassette"]
        assert run_fsck(cassette).clean
        table_after, report = load_cassette(cassette)
        assert not report.skipped
        # Surviving entries replay byte-identically.
        for digest, completion in table_after.items():
            assert table_before[digest] == completion
        assert len(table_after) == len(table_before) - 1
        assert cassette.with_name(cassette.name + ".corrupt").exists()
        assert not sidecar_path(cassette).exists()  # refreshed to clean

    def test_stale_sidecar_refreshed(self, tmp_path):
        cassette = tmp_path / "tape.jsonl"
        self._cassette(cassette)
        sidecar_path(cassette).write_text(
            json.dumps({"v": 1, "skipped": [{"line_number": 1, "reason": "x"}]}),
            encoding="utf-8",
        )
        plan = repair(cassette)
        assert [a.action for a in plan.actions] == ["refresh-sidecar"]
        assert run_fsck(cassette).clean
        assert not sidecar_path(cassette).exists()


class TestCertRepair:
    def test_damaged_evidence_moved_aside_with_provenance(self, tmp_path):
        import hashlib

        text = "(assert true)\n(check-sat)\n"
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        cert = tmp_path / f"cert-{digest[:12]}"
        cert.mkdir()
        (cert / "formula.smt2").write_text(text, encoding="utf-8")
        (cert / "report.json").write_text(
            json.dumps({"script_sha256": digest}), encoding="utf-8"
        )
        flip_bit(cert / "formula.smt2")

        report = run_fsck(tmp_path)
        assert report.unrepairable
        plan = plan_repairs(report)
        plan.apply()
        assert [a.action for a in plan.actions] == ["quarantine-evidence"]
        assert not cert.exists()
        moved = tmp_path / "damaged" / cert.name
        assert (moved / "provenance.json").exists()
        # Post-repair scan is clean (damaged/ is resolved evidence), but
        # the CLI still exits 9 because unrepairable findings existed.
        assert run_fsck(tmp_path).clean
