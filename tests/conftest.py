"""Shared fixtures.

Expensive artifacts (full policy models) are session-scoped; the small
policy fixture keeps most tests fast and independent of the big corpora.
"""

from __future__ import annotations

import pytest

from repro import PipelineConfig, PolicyPipeline
from repro.llm.client import CachedLLM
from repro.llm.simulated import SimulatedLLM
from repro.llm.tasks import TaskRunner

SMALL_POLICY = """\
Acme Privacy Policy. Last updated January 2025. Welcome to Acme ("Acme", \
"we", "us", or "our"). This Privacy Policy explains how Acme handles your \
information.

1. Information You Provide
We collect information that you provide directly. We collect your name \
and email address. When you create an account, you may provide your \
name, email address, and phone number. If you contact customer support, \
we collect your message content. Account and profile information, such \
as username, password, and profile image.

2. How We Share Your Information
We share your usage information with analytics providers for legitimate \
business purposes. We disclose personal information to law enforcement \
when required by law. We do not sell your contact information to third \
parties. We share your location information with advertisers with your \
consent.

3. Data Retention
We retain your email address as long as your account remains active. We \
delete your message content after 90 days.
"""


@pytest.fixture(scope="session")
def runner() -> TaskRunner:
    return TaskRunner(CachedLLM(SimulatedLLM()))


@pytest.fixture(scope="session")
def pipeline() -> PolicyPipeline:
    return PolicyPipeline()

@pytest.fixture(scope="session")
def small_policy_text() -> str:
    return SMALL_POLICY


@pytest.fixture(scope="session")
def small_model(pipeline, small_policy_text):
    return pipeline.process(small_policy_text)


@pytest.fixture(scope="session")
def tiktak_model(pipeline):
    from repro.corpus import tiktak_policy

    return pipeline.process(tiktak_policy().text)
