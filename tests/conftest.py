"""Shared fixtures.

Expensive artifacts (full policy models) are session-scoped; the small
policy fixture keeps most tests fast and independent of the big corpora.

The suite also installs an autouse network guard: tier-1 must run fully
offline, so any test that accidentally reaches a non-loopback address
(an HTTP provider built without its env gate, a mis-mocked transport)
fails loudly instead of hanging on a firewall or silently calling out.
Loopback stays open — the serving-daemon tests exercise real sockets on
127.0.0.1 by design.
"""

from __future__ import annotations

import socket

import pytest

from repro import PipelineConfig, PolicyPipeline
from repro.llm.client import CachedLLM
from repro.llm.simulated import SimulatedLLM
from repro.llm.tasks import TaskRunner

_LOOPBACK_NAMES = {"localhost", "127.0.0.1", "::1", ""}


def _is_loopback(address: object) -> bool:
    """Is a connect() destination local? (AF_UNIX paths always are.)"""
    if not isinstance(address, tuple) or not address:
        return True  # AF_UNIX path, abstract socket, etc.
    host = address[0]
    if isinstance(host, bytes):
        host = host.decode("utf-8", "replace")
    if not isinstance(host, str):
        return True
    return host in _LOOPBACK_NAMES or host.startswith("127.")


@pytest.fixture(autouse=True)
def _no_external_network(monkeypatch):
    """Fail loudly on any non-loopback network connect during tier-1."""
    real_connect = socket.socket.connect
    real_connect_ex = socket.socket.connect_ex

    def guarded_connect(self, address):
        if not _is_loopback(address):
            raise RuntimeError(
                f"test attempted an external network connection to "
                f"{address!r}; tier-1 must stay offline (use a fake "
                f"transport or a cassette)"
            )
        return real_connect(self, address)

    def guarded_connect_ex(self, address):
        if not _is_loopback(address):
            raise RuntimeError(
                f"test attempted an external network connection to "
                f"{address!r}; tier-1 must stay offline (use a fake "
                f"transport or a cassette)"
            )
        return real_connect_ex(self, address)

    monkeypatch.setattr(socket.socket, "connect", guarded_connect)
    monkeypatch.setattr(socket.socket, "connect_ex", guarded_connect_ex)
    yield

SMALL_POLICY = """\
Acme Privacy Policy. Last updated January 2025. Welcome to Acme ("Acme", \
"we", "us", or "our"). This Privacy Policy explains how Acme handles your \
information.

1. Information You Provide
We collect information that you provide directly. We collect your name \
and email address. When you create an account, you may provide your \
name, email address, and phone number. If you contact customer support, \
we collect your message content. Account and profile information, such \
as username, password, and profile image.

2. How We Share Your Information
We share your usage information with analytics providers for legitimate \
business purposes. We disclose personal information to law enforcement \
when required by law. We do not sell your contact information to third \
parties. We share your location information with advertisers with your \
consent.

3. Data Retention
We retain your email address as long as your account remains active. We \
delete your message content after 90 days.
"""


@pytest.fixture(scope="session")
def runner() -> TaskRunner:
    return TaskRunner(CachedLLM(SimulatedLLM()))


@pytest.fixture(scope="session")
def pipeline() -> PolicyPipeline:
    return PolicyPipeline()

@pytest.fixture(scope="session")
def small_policy_text() -> str:
    return SMALL_POLICY


@pytest.fixture(scope="session")
def small_model(pipeline, small_policy_text):
    return pipeline.process(small_policy_text)


@pytest.fixture(scope="session")
def tiktak_model(pipeline):
    from repro.corpus import tiktak_policy

    return pipeline.process(tiktak_policy().text)
