"""Crash matrix for the registry mint protocol and shard quarantine.

``PolicyRegistry.mint`` has a two-phase durability protocol per company:
commit the snapshot store first, then rewrite the atomic ``REGISTRY.json``
manifest.  This suite records the full step schedule of a one-company
mint with :func:`repro.store.faults.record_steps` and kills it at *every*
boundary: after each kill the manifest must parse as either the old or
the new index — never torn — any registered company must actually load,
and a re-mint must converge to the fully registered state.

Shard quarantine rides along: a corrupt shard surfaces as that company's
``ErrorOutcome`` (stage ``registry``) inside ``query_fleet`` instead of
aborting the whole fleet.
"""

from __future__ import annotations

import shutil

import pytest

from repro import ErrorOutcome
from repro.registry import MintSpec, PolicyRegistry, read_manifest
from repro.store.faults import (
    CrashInjector,
    SimulatedCrash,
    kill_points,
    record_steps,
)

pytestmark = [pytest.mark.fleet, pytest.mark.crash]

SPEC_ONE = MintSpec(count=1, seed=3, target_words=(340,))
COMPANY = SPEC_ONE.company_of(0)


@pytest.fixture(scope="module")
def schedule(pipeline, tmp_path_factory):
    """Every durable step one mint(count=1) performs, in order."""
    root = tmp_path_factory.mktemp("sched") / "reg"
    steps = record_steps(
        lambda injector: PolicyRegistry(
            root, pipeline=pipeline, step=injector
        ).mint(SPEC_ONE)
    )
    assert steps, "mint recorded no durable steps"
    # The manifest rewrite must be part of the recorded protocol, or the
    # matrix below silently stops covering it.
    assert "rename:REGISTRY.json" in steps
    return steps


class TestMintKillMatrix:
    def test_schedule_covers_store_and_manifest(self, schedule):
        assert any(s.startswith("write:") for s in schedule)
        assert "publish_current" in schedule
        assert schedule.index("publish_current") < schedule.index(
            "rename:REGISTRY.json"
        ), "manifest must be written only after the store is published"

    def test_every_boundary_recovers_old_or_new(
        self, pipeline, schedule, tmp_path_factory
    ):
        for step, occurrence in kill_points(schedule):
            root = tmp_path_factory.mktemp("kill") / "reg"
            injector = CrashInjector(step, occurrence=occurrence)
            with pytest.raises(SimulatedCrash):
                PolicyRegistry(root, pipeline=pipeline, step=injector).mint(
                    SPEC_ONE
                )

            # Recovery: a fresh process reads the manifest cold.
            manifest = read_manifest(root)  # must parse — never torn
            assert sorted(manifest.entries) in ([], [COMPANY]), (
                step,
                occurrence,
            )
            reopened = PolicyRegistry(root, pipeline=pipeline)
            if COMPANY in reopened:
                # Registered implies loadable: the store was committed
                # strictly before the manifest entry appeared.
                model = reopened.get_model(COMPANY)
                assert model.company == COMPANY, (step, occurrence)

            # Re-mint converges regardless of where the kill landed.
            report = reopened.mint(SPEC_ONE)
            assert sorted(report.minted + report.skipped) == [COMPANY]
            assert reopened.get_model(COMPANY).provenance is not None

    def test_kill_between_store_commit_and_manifest_entry(
        self, pipeline, tmp_path
    ):
        """The designed crash window: committed store, no manifest entry."""
        injector = CrashInjector("write:REGISTRY.json")
        with pytest.raises(SimulatedCrash):
            PolicyRegistry(
                tmp_path / "reg", pipeline=pipeline, step=injector
            ).mint(SPEC_ONE)
        manifest = read_manifest(tmp_path / "reg")
        assert manifest.entries == {}  # orphan store, dangling nothing
        reopened = PolicyRegistry(tmp_path / "reg", pipeline=pipeline)
        report = reopened.mint(SPEC_ONE)
        assert report.minted == [COMPANY]

    def test_second_company_manifest_kill_keeps_first(
        self, pipeline, tmp_path
    ):
        spec = MintSpec(count=2, seed=3, target_words=(340,))
        first, second = spec.company_of(0), spec.company_of(1)
        # Occurrence 2 of the manifest temp-file write = the second
        # company's registration, killed before its rename publishes it;
        # the first company's entry is already durable.
        injector = CrashInjector("write:REGISTRY.json", occurrence=2)
        with pytest.raises(SimulatedCrash):
            PolicyRegistry(
                tmp_path / "reg", pipeline=pipeline, step=injector
            ).mint(spec)
        reopened = PolicyRegistry(tmp_path / "reg", pipeline=pipeline)
        assert reopened.companies() == [first]
        assert reopened.get_model(first).company == first
        report = reopened.mint(spec)
        assert report.minted == [second]
        assert report.skipped == [first]


class TestShardQuarantine:
    @pytest.fixture(scope="class")
    def fleet_root(self, pipeline, tmp_path_factory):
        root = tmp_path_factory.mktemp("quarantine") / "reg"
        PolicyRegistry(root, pipeline=pipeline).mint(
            MintSpec(count=4, seed=5, target_words=(340,))
        )
        return root

    def _corrupt(self, registry: PolicyRegistry, company: str) -> None:
        """Destroy every snapshot artifact behind one company."""
        store_dir = registry.root / registry.entry(company).store_dir
        for artifact in store_dir.glob("snapshots/*/graph.json"):
            artifact.write_bytes(b'{"tampered": true}')

    def test_corrupt_shard_is_isolated_not_fatal(self, pipeline, fleet_root):
        registry = PolicyRegistry(fleet_root, pipeline=pipeline)
        victim = registry.companies()[1]
        self._corrupt(registry, victim)
        report = registry.query_fleet(
            "The company shares the email address with advertisers."
        )
        assert not report.aborted
        by_company = dict(report.per_company())
        outcome = by_company[victim]
        assert isinstance(outcome, ErrorOutcome)
        assert outcome.stage == "registry"
        healthy = [c for c in registry.companies() if c != victim]
        for company in healthy:
            assert not isinstance(by_company[company], ErrorOutcome), company
        assert report.verdict_counts().get("ERROR") == 1

    def test_missing_store_directory_is_isolated_too(
        self, pipeline, fleet_root
    ):
        registry = PolicyRegistry(fleet_root, pipeline=pipeline)
        victim = registry.companies()[2]
        shutil.rmtree(registry.root / registry.entry(victim).store_dir)
        report = registry.query_fleet(
            "The company shares the email address with advertisers.",
            [victim, registry.companies()[0]],
        )
        assert not report.aborted
        assert isinstance(dict(report.per_company())[victim], ErrorOutcome)
