"""Certification wired through the pipeline: alarms, quarantine, ladder,
batch sampling, metrics, and the CLI exit code.

These tests drive the *whole* Phase 3 path (not just the solver) with
seeded soundness mutations from :mod:`repro.solver.faults` and assert the
certification failure surfaces exactly as designed: verdict demoted to
UNKNOWN with the ``certification failed`` reason, CertificateReport
attached, offending formula quarantined, PipelineMetrics counting it, the
degradation ladder refusing to escalate it, and ``repro-policy query``
exiting 5.
"""

from __future__ import annotations

import json

import pytest

from repro import PolicyPipeline, Verdict
from repro.core.pipeline import PipelineConfig
from repro.core.verify import (
    CERTIFICATION_FAILED,
    is_certification_failure,
    verification_cache_key,
)
from repro.resilience import BudgetLadder, execute_ladder, is_budget_limited
from repro.solver import faults
from repro.solver.interface import SolverBudget

QUESTION = "Acme collects the email address."


def _mutation(name: str) -> faults.Mutation:
    return next(m for m in faults.soundness_mutations() if m.name == name)


@pytest.fixture()
def fresh_model(small_policy_text):
    """A private model per test: mutated queries poison the verification
    cache, which must never leak into other tests."""
    return PolicyPipeline().process(small_policy_text)


class TestQueryCertification:
    def test_single_queries_certify_by_default(self, fresh_model):
        pipeline = PolicyPipeline()
        outcome = pipeline.query(fresh_model, QUESTION)
        assert outcome.verdict is Verdict.VALID
        report = outcome.verification.certificate
        assert report is not None and report.certified
        assert outcome.metrics.certifications_run == 1
        assert outcome.metrics.certification_failures == 0

    def test_certify_false_disables_for_one_query(self, fresh_model):
        pipeline = PolicyPipeline()
        outcome = pipeline.query(fresh_model, QUESTION, certify=False)
        assert outcome.verification.certificate is None
        assert outcome.metrics.certifications_run == 0

    def test_config_certify_off_disables_by_default(self, fresh_model):
        pipeline = PolicyPipeline(config=PipelineConfig(certify=False))
        outcome = pipeline.query(fresh_model, QUESTION)
        assert outcome.verification.certificate is None

    def test_mutation_demotes_to_unknown_with_report(self, fresh_model):
        pipeline = PolicyPipeline()
        mutation = _mutation("swap-ground-connective")
        with faults.installed(mutation):
            outcome = pipeline.query(fresh_model, QUESTION)
        assert mutation.fires > 0
        assert outcome.verdict is Verdict.UNKNOWN
        assert is_certification_failure(outcome.verification)
        report = outcome.verification.certificate
        assert report is not None and report.failed
        assert outcome.metrics.certification_failures == 1
        # The soundness alarm travels with the trace and the summary.
        trace = outcome.as_dict()["verification"]
        assert trace["certificate"]["status"] == "failed"
        assert "SOUNDNESS ALARM" in outcome.summary()

    def test_mutation_quarantines_offending_formula(
        self, fresh_model, tmp_path
    ):
        quarantine = tmp_path / "quarantine"
        pipeline = PolicyPipeline(
            config=PipelineConfig(certification_quarantine_dir=quarantine)
        )
        with faults.installed(_mutation("drop-ground-instance")):
            outcome = pipeline.query(fresh_model, QUESTION)
        assert outcome.verdict is Verdict.UNKNOWN
        assert outcome.metrics.certification_quarantines == 1
        target = outcome.verification.quarantined_to
        assert target is not None
        entries = list(quarantine.iterdir())
        assert len(entries) == 1 and entries[0].name.startswith("cert-")
        formula_text = (entries[0] / "formula.smt2").read_text("utf-8")
        assert formula_text == outcome.verification.smtlib_text
        report = json.loads((entries[0] / "report.json").read_text("utf-8"))
        assert report["reason"].startswith(CERTIFICATION_FAILED)
        assert report["certificate"]["status"] == "failed"

    def test_clean_run_does_not_quarantine(self, fresh_model, tmp_path):
        quarantine = tmp_path / "quarantine"
        pipeline = PolicyPipeline(
            config=PipelineConfig(certification_quarantine_dir=quarantine)
        )
        outcome = pipeline.query(fresh_model, QUESTION)
        assert outcome.verdict is Verdict.VALID
        assert outcome.verification.quarantined_to is None
        assert not quarantine.exists()

    def test_cache_key_separates_certified_and_uncertified(self):
        base = verification_cache_key("(check-sat)", None)
        certified = verification_cache_key("(check-sat)", None, certify=True)
        assert base != certified

    def test_certified_and_uncertified_verdicts_agree(self, fresh_model):
        pipeline = PolicyPipeline(
            config=PipelineConfig(enable_query_caches=False)
        )
        plain = pipeline.query(fresh_model, QUESTION, certify=False)
        certified = pipeline.query(fresh_model, QUESTION, certify=True)
        assert plain.verdict == certified.verdict
        assert (
            plain.verification.as_dict() == certified.verification.as_dict()
        ), "a passing certificate must not change the deterministic trace"


class TestLadderShortCircuit:
    def test_certification_failure_is_not_budget_limited(self, fresh_model):
        pipeline = PolicyPipeline()
        with faults.installed(_mutation("swap-ground-connective")):
            outcome = pipeline.query(fresh_model, QUESTION)
        assert is_certification_failure(outcome.verification)
        assert not is_budget_limited(outcome.verification)

    def test_armed_ladder_never_escalates_a_soundness_alarm(
        self, fresh_model
    ):
        pipeline = PolicyPipeline(
            config=PipelineConfig(budget_ladder=BudgetLadder())
        )
        with faults.installed(_mutation("swap-ground-connective")):
            outcome = pipeline.query(fresh_model, QUESTION)
        assert outcome.verdict is Verdict.UNKNOWN
        assert outcome.degradation is None
        assert outcome.metrics.degraded_queries == 0
        assert outcome.metrics.ladder_escalations == 0
        # The report survives the (skipped) ladder intact.
        assert outcome.verification.certificate is not None
        assert outcome.verification.certificate.failed

    def test_execute_ladder_short_circuits_with_report_intact(
        self, fresh_model
    ):
        pipeline = PolicyPipeline()
        with faults.installed(_mutation("swap-ground-connective")):
            outcome = pipeline.query(fresh_model, QUESTION)
        verification = outcome.verification
        result, report = execute_ladder(
            outcome.subgraph,
            None,  # params unused: the ladder must return before touching them
            verification,
            ladder=BudgetLadder(),
            base_budget=SolverBudget(),
            encoded=outcome.encoded,
        )
        assert result is verification
        assert result.certificate is not None and result.certificate.failed
        assert report.steps == []
        assert not report.rescued
        assert report.base_reason.startswith(CERTIFICATION_FAILED)


class TestBatchSampling:
    QUESTIONS = [
        "Acme collects the email address.",
        "Acme collects the phone number.",
        "Acme shares the usage information with analytics providers.",
        "Acme sells the contact information.",
        "Acme collects the message content.",
        "Acme shares the location information with advertisers.",
    ]

    def test_stride_samples_by_input_index(self, fresh_model):
        pipeline = PolicyPipeline(
            config=PipelineConfig(batch_certify_stride=2)
        )
        batch = pipeline.query_batch(
            fresh_model, self.QUESTIONS, max_workers=1
        )
        certified = [
            o.verification.certificate is not None for o in batch.outcomes
        ]
        assert certified == [True, False, True, False, True, False]
        assert batch.metrics.certifications_run == 3

    def test_stride_is_deterministic_across_worker_counts(
        self, small_policy_text
    ):
        def flags(workers):
            pipeline = PolicyPipeline(
                config=PipelineConfig(batch_certify_stride=3)
            )
            model = PolicyPipeline().process(small_policy_text)
            batch = pipeline.query_batch(
                model, self.QUESTIONS, max_workers=workers
            )
            return [
                o.verification.certificate is not None for o in batch.outcomes
            ]

        assert flags(1) == flags(4) == [True, False, False, True, False, False]

    def test_certify_off_skips_sampling_entirely(self, fresh_model):
        pipeline = PolicyPipeline(
            config=PipelineConfig(certify=False, batch_certify_stride=1)
        )
        batch = pipeline.query_batch(
            fresh_model, self.QUESTIONS[:3], max_workers=1
        )
        assert all(
            o.verification.certificate is None for o in batch.outcomes
        )
        assert batch.metrics.certifications_run == 0


class TestCLIExitCode:
    def _write_policy(self, tmp_path, small_policy_text):
        policy = tmp_path / "policy.txt"
        policy.write_text(small_policy_text, "utf-8")
        return policy

    def test_certification_failure_exits_5_and_quarantines(
        self, tmp_path, small_policy_text, capsys
    ):
        from repro.cli import main

        policy = self._write_policy(tmp_path, small_policy_text)
        quarantine = tmp_path / "quarantine"
        with faults.installed(_mutation("swap-ground-connective")):
            code = main(
                [
                    "query",
                    str(policy),
                    QUESTION,
                    "--quarantine",
                    str(quarantine),
                ]
            )
        assert code == 5
        out = capsys.readouterr().out
        assert "SOUNDNESS ALARM" in out
        assert any(quarantine.iterdir())

    def test_no_certify_flag_skips_certification(
        self, tmp_path, small_policy_text, capsys
    ):
        from repro.cli import main

        policy = self._write_policy(tmp_path, small_policy_text)
        with faults.installed(_mutation("swap-ground-connective")):
            code = main(["query", str(policy), QUESTION, "--no-certify"])
        # Without certification the corrupted verdict is NOT detected —
        # which is exactly why certification defaults to on.
        assert code != 5

    def test_clean_query_exits_by_verdict(
        self, tmp_path, small_policy_text, capsys
    ):
        from repro.cli import main

        policy = self._write_policy(tmp_path, small_policy_text)
        assert main(["query", str(policy), QUESTION]) == 0

    def test_exit_code_epilog_documents_code_5(self):
        from repro.cli import EXIT_CODES_EPILOG

        assert "5" in EXIT_CODES_EPILOG
        assert "certification" in EXIT_CODES_EPILOG
