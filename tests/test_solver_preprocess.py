"""Unit and randomized tests for CNF preprocessing."""

import itertools
import random

import pytest

from repro.solver.preprocess import preprocess
from repro.solver.result import SatResult
from repro.solver.sat import CDCLSolver


def _brute_sat(n, clauses):
    for bits in itertools.product([False, True], repeat=n):
        if all(any((l > 0) == bits[abs(l) - 1] for l in c) for c in clauses):
            return True
    return False


class TestBasics:
    def test_tautology_removed(self):
        result = preprocess([(1, -1)])
        assert result.clauses == []
        assert result.stats.tautologies_removed == 1

    def test_duplicate_removed(self):
        result = preprocess([(1, 2), (2, 1)])
        assert len(result.clauses) == 1
        assert result.stats.duplicates_removed == 1

    def test_unit_fixed_and_propagated(self):
        result = preprocess([(1,), (-1, 2), (-2, 3)])
        assert result.fixed == {1: True, 2: True, 3: True}
        assert result.clauses == []

    def test_unit_conflict(self):
        result = preprocess([(1,), (-1,)])
        assert result.conflict

    def test_chain_conflict(self):
        result = preprocess([(1,), (-1, 2), (-2,)])
        assert result.conflict

    def test_subsumption(self):
        result = preprocess([(1, 2), (1, 2, 3)])
        assert result.clauses == [(1, 2)]
        assert result.stats.subsumed_removed == 1

    def test_satisfied_clause_removed(self):
        result = preprocess([(1,), (1, 2, 3)])
        assert result.clauses == []
        assert result.stats.satisfied_removed >= 1


class TestPureLiterals:
    def test_pure_positive_eliminated(self):
        result = preprocess([(1, 2), (1, 3)], pure_literals=True)
        assert result.fixed.get(1) is True
        assert result.clauses == []

    def test_mixed_polarity_kept(self):
        result = preprocess([(1, 2), (-1, 3)], pure_literals=True)
        # 1 is mixed; 2 and 3 are pure and eliminate everything.
        assert result.fixed.get(2) is True
        assert result.fixed.get(3) is True

    def test_protected_variable_not_eliminated(self):
        result = preprocess(
            [(1, 2)], pure_literals=True, protect=frozenset({1, 2})
        )
        assert 1 not in result.fixed
        assert 2 not in result.fixed
        assert result.clauses == [(1, 2)]

    def test_disabled_by_default(self):
        result = preprocess([(1, 2)])
        assert not result.fixed


class TestEquisatisfiability:
    @pytest.mark.parametrize("pure", [False, True])
    def test_randomized_against_brute_force(self, pure):
        rng = random.Random(13 + pure)
        for _ in range(400):
            n = rng.randint(1, 7)
            m = rng.randint(1, 18)
            clauses = [
                tuple(
                    rng.choice([1, -1]) * rng.randint(1, n)
                    for _ in range(rng.randint(1, 3))
                )
                for _ in range(m)
            ]
            expected = _brute_sat(n, clauses)
            result = preprocess(clauses, pure_literals=pure)
            if result.conflict:
                got = False
            else:
                solver = CDCLSolver(n)
                ok = True
                for clause in result.clauses:
                    ok = solver.add_clause(clause) and ok
                for var, value in result.fixed.items():
                    solver.add_clause((var if value else -var,))
                got = ok and solver.solve() is SatResult.SAT
            assert got == expected, (clauses, result.fixed, result.clauses)

    def test_fixed_assignments_consistent_with_model(self):
        clauses = [(1,), (-1, 2), (2, 3), (-3, 4)]
        result = preprocess(clauses)
        assert not result.conflict
        # Every original clause is satisfied by fixed + any model of the rest.
        solver = CDCLSolver(4)
        for clause in result.clauses:
            solver.add_clause(clause)
        assert solver.solve() is SatResult.SAT
        model = solver.model()
        assignment = {v: model.get(v, False) for v in range(1, 5)}
        assignment.update(result.fixed)
        for clause in clauses:
            assert any((l > 0) == assignment[abs(l)] for l in clause)


class TestReductionOnRealEncodings:
    def test_policy_encoding_shrinks(self, tiktak_model):
        from repro.core.encode import encode_query
        from repro.core.subgraph import extract_subgraph
        from repro.fol.builder import negate
        from repro.llm.tasks import ExtractedParameters
        from repro.solver.cnf import tseitin
        from repro.solver.grounding import Universe, ground
        from repro.solver.literals import AtomPool
        from repro.fol.visitor import collect_constants

        sub = extract_subgraph(tiktak_model.graph, ["email"], [], max_edges=120)
        # A non-entailed practice keeps the clause set satisfiable, so the
        # interesting metric is reduction, not outright refutation.
        query = ExtractedParameters(
            sender="tiktak",
            receiver=None,
            subject="user",
            data_type="email",
            action="sell",
            condition=None,
            permission=True,
        )
        encoded = encode_query(sub, query)
        universe = Universe()
        pool = AtomPool()
        clauses = []
        formulas = encoded.policy_formulas + [negate(encoded.query_formula)]
        for formula in formulas:
            universe.declare_all(collect_constants(formula))
        for formula in formulas:
            clauses.extend(tseitin(ground(formula, universe), pool))
        result = preprocess(clauses)
        assert not result.conflict
        assert len(result.clauses) < len(clauses)
        assert result.stats.units_fixed > 0
