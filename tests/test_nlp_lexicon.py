"""Unit tests for the privacy-domain lexicons."""

import pytest

from repro.nlp.lexicon import (
    ACTION_VERBS,
    COLLECTION_VERBS,
    CONDITION_OPENERS,
    DATA_HEAD_NOUNS,
    ENTITY_TERMS,
    PURPOSE_OPENERS,
    SHARING_VERBS,
    USE_VERBS,
    USER_ACTION_VERBS,
    VAGUE_TERMS,
    canonical_vague_predicate,
    find_vague_terms,
)


class TestVerbCategories:
    def test_all_categories_in_union(self):
        for group in (COLLECTION_VERBS, SHARING_VERBS, USE_VERBS, USER_ACTION_VERBS):
            assert group <= ACTION_VERBS

    def test_core_verbs_present(self):
        assert "collect" in COLLECTION_VERBS
        assert "share" in SHARING_VERBS
        assert "retain" in USE_VERBS
        assert "upload" in USER_ACTION_VERBS

    def test_verbs_are_base_forms(self):
        from repro.nlp.morphology import lemmatize_verb

        # Every lexicon verb lemmatizes to itself (they are base forms).
        exceptions = {"process", "access", "address"}  # -ss endings pass through
        for verb in ACTION_VERBS:
            if verb in exceptions:
                continue
            assert lemmatize_verb(verb) == verb, verb


class TestEntities:
    def test_multiword_entities_lowercase(self):
        for entity in ENTITY_TERMS:
            assert entity == entity.lower()

    def test_common_receivers_present(self):
        for expected in ("advertisers", "service providers", "law enforcement", "third parties"):
            assert expected in ENTITY_TERMS


class TestConditionOpeners:
    def test_openers_end_sensibly(self):
        # Openers are matched as prefixes: all but fixed phrases carry a
        # trailing space so "if" does not match "iffy".
        for opener in CONDITION_OPENERS:
            assert opener == opener.lower()

    def test_core_openers(self):
        assert "if " in CONDITION_OPENERS
        assert "unless " in CONDITION_OPENERS
        assert "as required by " in CONDITION_OPENERS

    def test_purpose_openers_distinct(self):
        assert not set(PURPOSE_OPENERS) & set(CONDITION_OPENERS)


class TestVagueTerms:
    def test_canonical_names_are_identifiers(self):
        for name in VAGUE_TERMS.values():
            assert name.replace("_", "a").isalnum(), name
            assert name == name.lower()

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("for legitimate business purposes", "legitimate_business_purpose"),
            ("when required by law", "required_by_law"),
            ("with your consent", "user_consent"),
            ("subject to appropriate safeguards", "appropriate_safeguards"),
        ],
    )
    def test_canonical_vague_predicate(self, text, expected):
        assert canonical_vague_predicate(text) == expected

    def test_longest_match_wins(self):
        # "legitimate business purposes" contains "business purposes"; the
        # longer phrase must win.
        assert (
            canonical_vague_predicate("for legitimate business purposes only")
            == "legitimate_business_purpose"
        )

    def test_no_vague_term(self):
        assert canonical_vague_predicate("if you enable the feature") is None

    def test_find_vague_terms_multiple(self):
        found = find_vague_terms(
            "with your consent or when required by law"
        )
        names = {name for _phrase, name in found}
        assert {"user_consent", "required_by_law"} <= names

    def test_find_vague_terms_subsumed_phrase_dropped(self):
        found = find_vague_terms("for legitimate business purposes")
        names = [name for _phrase, name in found]
        assert names == ["legitimate_business_purpose"]

    def test_find_vague_terms_empty(self):
        assert find_vague_terms("we collect your email") == []


class TestDataHeadNouns:
    def test_lowercase(self):
        for noun in DATA_HEAD_NOUNS:
            assert noun == noun.lower()

    def test_core_nouns(self):
        for noun in ("information", "data", "email", "address", "location"):
            assert noun in DATA_HEAD_NOUNS
