"""Property tests for substrate data structures.

Covers invariants the earlier property file does not: coordination
expansion, the atom pool bijection, the Luby sequence, embedding-store
consistency, condition-expression parsing, and the question normalizer.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import atoms_of, parse_condition
from repro.core.questions import normalize_question
from repro.embeddings.model import EmbeddingModel
from repro.embeddings.search import top_k
from repro.embeddings.store import EmbeddingStore
from repro.nlp.chunker import expand_coordination, split_enumeration
from repro.solver.literals import AtomPool
from repro.solver.sat import luby

_MODEL = EmbeddingModel()

_word = st.text(alphabet="abcdefghijklmnop", min_size=2, max_size=8).filter(
    lambda w: w not in {"and", "an", "a", "all", "of", "in", "on"}
)
_phrase = st.lists(_word, min_size=1, max_size=3).map(" ".join)


class TestChunkerProperties:
    @given(st.lists(_phrase, min_size=1, max_size=6, unique=True))
    @settings(max_examples=150, deadline=None)
    def test_expansion_covers_enumeration(self, items):
        text = ", ".join(items[:-1]) + (", and " if len(items) > 1 else "") + items[-1]
        expanded = expand_coordination(text, singularize=False)
        # No separators or empties survive expansion.
        assert all(expanded)
        assert all("," not in item for item in expanded)
        assert all(" and " not in f" {item} " for item in expanded)

    @given(st.lists(_phrase, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_split_enumeration_partition(self, items):
        text = ", ".join(items)
        parts = split_enumeration(text)
        assert all(p.strip() == p for p in parts)
        # Re-joining preserves all words (order kept, separators dropped).
        assert " ".join(parts).split() == [
            w for item in items for w in item.replace(",", " ").split()
        ]

    @given(_phrase)
    @settings(max_examples=100, deadline=None)
    def test_single_item_round_trip(self, phrase):
        parts = split_enumeration(phrase)
        assert len(parts) <= max(1, phrase.count(",") + 1)


class TestAtomPoolProperties:
    @given(st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_bijection(self, keys):
        pool = AtomPool()
        variables = [pool.variable_for(k) for k in keys]
        for key, var in zip(keys, variables):
            assert pool.variable_for(key) == var
            assert pool.key_for(var) == key
        # Distinct keys get distinct variables.
        assert len({pool.variable_for(k) for k in set(keys)}) == len(set(keys))

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_fresh_never_collides(self, n):
        pool = AtomPool()
        pool.variable_for("real atom")
        fresh = [pool.fresh() for _ in range(n)]
        assert len(set(fresh)) == n
        assert "real atom" in pool.named_atoms()
        assert len(pool.named_atoms()) == 1


class TestLubyProperties:
    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=200, deadline=None)
    def test_values_are_powers_of_two(self, i):
        value = luby(i)
        assert value > 0
        assert value & (value - 1) == 0  # power of two

    def test_known_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i) for i in range(1, 16)] == expected

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=100, deadline=None)
    def test_self_similarity(self, i):
        # The sequence is the previous block repeated, then a new maximum:
        # luby(2^k - 1) == 2^(k-1), and for i < 2^k - 1,
        # luby((2^k - 1) + i) == luby(i).
        k = 1
        while (1 << (k + 1)) - 1 <= i:
            k += 1
        block_end = (1 << k) - 1
        if i < block_end:
            assert luby(block_end + i) == luby(i)


class TestEmbeddingStoreProperties:
    @given(st.lists(_phrase, min_size=1, max_size=15, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_matrix_row_alignment(self, phrases):
        store = EmbeddingStore(_MODEL)
        store.add_many(phrases)
        matrix = store.matrix()
        for i, key in enumerate(store.keys):
            assert np.allclose(matrix[i], store.get(key))

    @given(st.lists(_phrase, min_size=2, max_size=12, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_stored_key_scores_one_against_itself(self, phrases):
        # Distinct phrases may still embed identically ("aa" vs "aa aa"
        # average to the same vector), so the property is about scores, not
        # strict rank: the query is among the maximal-score hits.
        store = EmbeddingStore(_MODEL)
        store.add_many(phrases)
        query = phrases[0]
        hits = top_k(store, query, k=len(phrases))
        assert np.isclose(hits[0].score, 1.0)
        top_keys = {h.key for h in hits if np.isclose(h.score, hits[0].score)}
        assert query in top_keys


class TestConditionProperties:
    @given(st.lists(_phrase, min_size=1, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_atoms_cover_all_disjuncts(self, parts):
        text = " or ".join(parts)
        expr = parse_condition(text)
        assert len(atoms_of(expr)) == len(parts)

    @given(_phrase)
    @settings(max_examples=100, deadline=None)
    def test_atom_predicates_are_identifiers(self, text):
        for atom in atoms_of(parse_condition(text)):
            assert atom.predicate
            assert " " not in atom.predicate


class TestQuestionProperties:
    @given(_phrase)
    @settings(max_examples=100, deadline=None)
    def test_normalized_output_is_sentence(self, phrase):
        result = normalize_question(f"Does Acme collect my {phrase}?")
        assert result.endswith(".")
        assert result[0].isupper()
        assert "?" not in result
        assert "my" not in result.split()
