"""Serving daemon suite: admission gate, epoch handles, endpoints, drain.

The components are tested at three levels, mirroring the job-runner
suite: the :class:`~repro.server.admission.AdmissionGate` and
:class:`~repro.server.epochs.EpochSwitch` invariants in isolation, the
HTTP surface against a real socket on 127.0.0.1 with the pipeline's
simulated substrates, and — the PR 7 satellite — graceful drain driven
by an **injected stop-flag** (:meth:`PolicyServer.begin_drain`), never a
real signal: in-flight queries must finish and be reported, new
admissions must be refused with a structured body, and draining twice
must be a no-op.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import (
    PolicyPipeline,
    PolicyServer,
    ServerConfig,
    ServerError,
    ServingClient,
)
from repro.registry import MintSpec, PolicyRegistry
from repro.server import AdmissionGate, EpochSwitch

SPEC = MintSpec(count=3, seed=29, target_words=(340,))

QUESTION = "The company collects the user's email address."


@pytest.fixture(scope="module")
def serving_root(pipeline, tmp_path_factory):
    root = tmp_path_factory.mktemp("serving") / "reg"
    registry = PolicyRegistry(root, pipeline=pipeline, max_warm=8)
    report = registry.mint(SPEC)
    assert len(report.minted) == SPEC.count
    return root


def make_server(root, *, query_fn=None, **overrides) -> PolicyServer:
    defaults = dict(
        root=root,
        port=0,
        max_pending=4,
        default_deadline=10.0,
        handle_signals=False,
    )
    defaults.update(overrides)
    return PolicyServer(
        ServerConfig(**defaults),
        pipeline=PolicyPipeline(),
        query_fn=query_fn,
    )


@pytest.fixture()
def server(serving_root):
    srv = make_server(serving_root, warm_on_start=-1)
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    host, port = server.address
    c = ServingClient(host, port, timeout=10.0)
    yield c
    c.close()


# ---------------------------------------------------------------------------
# ServerConfig validation
# ---------------------------------------------------------------------------


class TestServerConfig:
    def test_defaults_valid(self, tmp_path):
        config = ServerConfig(root=tmp_path)
        assert config.max_pending == 8 and config.shed_above is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_pending": 0},
            {"shed_above": 0},
            {"max_pending": 4, "shed_above": 5},
            {"default_deadline": 0},
            {"drain_grace": 0},
            {"socket_timeout": -1},
            {"max_warm": 0},
            {"warm_on_start": -2},
            {"port": 70000},
        ],
    )
    def test_invalid_knobs_refused(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            ServerConfig(root=tmp_path, **kwargs)


# ---------------------------------------------------------------------------
# AdmissionGate invariants
# ---------------------------------------------------------------------------


class TestAdmissionGate:
    def test_admit_and_exit_track_depth(self):
        gate = AdmissionGate(max_pending=3)
        assert gate.enter() is None
        assert gate.enter() is None
        assert gate.depth == 2 and gate.high_water == 2
        gate.exit()
        assert gate.depth == 1
        gate.exit()
        assert gate.depth == 0 and gate.admitted == 2

    def test_shed_watermark_fires_immediately(self):
        gate = AdmissionGate(max_pending=4, shed_above=2)
        assert gate.enter() is None and gate.enter() is None
        started = time.monotonic()
        decision = gate.enter(deadline_at=time.monotonic() + 30.0)
        elapsed = time.monotonic() - started
        assert decision is not None and decision.reason == "shed"
        assert elapsed < 0.5, "shedding must never wait"
        assert decision.pending_at_admission == 2
        assert gate.shed == 1

    def test_shed_body_shape(self):
        gate = AdmissionGate(max_pending=2, shed_above=1)
        gate.enter()
        body = gate.enter().as_dict()
        assert body["error"] == "shed" and body["verdict"] == "UNKNOWN"
        assert body["shed"]["max_pending"] == 2

    def test_full_gate_blocks_until_slot_frees(self):
        gate = AdmissionGate(max_pending=1)
        assert gate.enter() is None
        result = {}

        def waiter():
            result["decision"] = gate.enter(deadline_at=time.monotonic() + 10.0)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        assert t.is_alive(), "second enter should be waiting for a slot"
        gate.exit()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert result["decision"] is None
        gate.exit()

    def test_waiter_refused_at_its_deadline(self):
        gate = AdmissionGate(max_pending=1)
        gate.enter()
        started = time.monotonic()
        decision = gate.enter(deadline_at=time.monotonic() + 0.1)
        assert decision is not None and decision.reason == "deadline"
        assert time.monotonic() - started < 2.0
        assert gate.refused_deadline == 1

    def test_stop_wakes_waiters_with_draining_refusal(self):
        gate = AdmissionGate(max_pending=1)
        gate.enter()
        decisions = []

        def waiter():
            decisions.append(gate.enter(deadline_at=time.monotonic() + 30.0))

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        gate.stop()
        t.join(timeout=5.0)
        assert not t.is_alive(), "stop must wake the waiter immediately"
        assert decisions[0].reason == "draining"
        assert gate.refused_draining == 1

    def test_stopped_gate_refuses_without_waiting(self):
        gate = AdmissionGate(max_pending=4)
        gate.stop()
        gate.stop()  # idempotent
        decision = gate.enter()
        assert decision is not None and decision.reason == "draining"

    def test_wait_empty_barrier(self):
        gate = AdmissionGate(max_pending=2)
        gate.enter()
        assert not gate.wait_empty(timeout=0.05)
        threading.Timer(0.05, gate.exit).start()
        assert gate.wait_empty(timeout=5.0)

    @pytest.mark.parametrize("kwargs", [{"max_pending": 0}, {"max_pending": 2, "shed_above": 3}])
    def test_invalid_bounds_refused(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionGate(**kwargs)


# ---------------------------------------------------------------------------
# EpochSwitch invariants
# ---------------------------------------------------------------------------


class TestEpochSwitch:
    def test_reload_with_no_pins_retires_immediately(self):
        builds = []
        switch = EpochSwitch(lambda: builds.append(len(builds)) or len(builds))
        assert switch.current_epoch == 0
        report = switch.reload()
        assert (report.old_epoch, report.new_epoch) == (0, 1)
        assert report.pinned == 0
        assert switch.retiring() == []
        assert switch.reloads == 1

    def test_pinned_epoch_survives_reload_until_release(self):
        switch = EpochSwitch(object)
        with switch.acquire() as pinned:
            report = switch.reload()
            assert report.pinned == 1
            assert switch.retiring() == [(0, 1)]
            assert switch.current_epoch == 1
            # The request keeps its pinned registry object.
            assert pinned.number == 0
            assert not pinned.retired
        assert switch.retiring() == []
        assert pinned.retired

    def test_new_acquires_see_the_new_epoch(self):
        switch = EpochSwitch(object)
        with switch.acquire():
            switch.reload()
            with switch.acquire() as fresh:
                assert fresh.number == 1

    def test_replacement_is_built_by_the_factory_each_reload(self):
        registries = iter(["first", "second", "third"])
        switch = EpochSwitch(lambda: next(registries))
        assert switch.current_registry == "first"
        switch.reload()
        assert switch.current_registry == "second"
        switch.reload(lambda: "override")
        assert switch.current_registry == "override"

    def test_wait_quiesced(self):
        switch = EpochSwitch(object)
        release = threading.Event()

        def holder():
            with switch.acquire():
                release.wait(timeout=10.0)

        t = threading.Thread(target=holder)
        t.start()
        time.sleep(0.05)
        switch.reload()
        assert not switch.wait_quiesced(timeout=0.05)
        release.set()
        assert switch.wait_quiesced(timeout=5.0)
        t.join(timeout=5.0)

    def test_double_reload_under_one_pin_drains_both(self):
        switch = EpochSwitch(object)
        with switch.acquire():
            switch.reload()
            switch.reload()
            assert switch.current_epoch == 2
            assert [number for number, _ in switch.retiring()] == [0]
        assert switch.retiring() == []


# ---------------------------------------------------------------------------
# Lifecycle and HTTP surface
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_empty_root_refused_at_start(self, tmp_path):
        srv = make_server(tmp_path / "nothing-here")
        with pytest.raises(ServerError, match="no companies"):
            srv.start()

    def test_double_start_refused(self, server):
        with pytest.raises(ServerError, match="already started"):
            server.start()

    def test_address_requires_start(self, serving_root):
        srv = make_server(serving_root)
        with pytest.raises(ServerError):
            srv.address

    def test_await_drained_requires_begin_drain(self, server):
        with pytest.raises(ServerError, match="begin_drain"):
            server.await_drained(timeout=0.1)


class TestEndpoints:
    def test_healthz_and_readyz(self, client):
        assert client.healthz() == (200, {"status": "alive"})
        status, body = client.readyz()
        assert status == 200 and body["ready"] is True

    def test_root_lists_routes(self, client):
        status, body = client.request("GET", "/")
        assert status == 200
        assert "POST /query" in body["endpoints"]

    def test_unknown_routes_404(self, client):
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("POST", "/nope")[0] == 404

    def test_companies_roster(self, client, serving_root, pipeline):
        roster = PolicyRegistry(serving_root, pipeline=pipeline).companies()
        assert client.companies() == roster

    def test_query_round_trip(self, client):
        company = client.companies()[0]
        status, body = client.query(company, QUESTION)
        assert status == 200
        assert body["company"] == company
        assert body["verdict"] in {"VALID", "INVALID", "UNKNOWN"}
        assert body["epoch"] == 0
        assert "trace" not in body

    def test_query_trace_includes_outcome_dict(self, client):
        company = client.companies()[0]
        status, body = client.query(company, QUESTION, trace=True)
        assert status == 200
        assert body["trace"]["verification"]["verdict"] == body["verdict"]
        assert body["trace"]["question"]

    def test_unknown_company_is_404_not_500(self, client):
        status, body = client.query("not-a-company", QUESTION)
        assert status == 404
        assert body["error"] == "unknown company"

    def test_malformed_bodies_400(self, client):
        status, body = client.request("POST", "/query", {"company": 3, "question": QUESTION})
        assert status == 400
        status, _ = client.request("POST", "/query", {})
        assert status == 400
        status, _ = client.request(
            "POST", "/query",
            {"company": "x", "question": QUESTION, "deadline_seconds": -1},
        )
        assert status == 400

    def test_non_object_body_400(self, server):
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            conn.request("POST", "/query", body=b"[1, 2, 3]")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_invalid_json_400(self, server):
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            conn.request("POST", "/query", body=b"{nope")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_oversized_body_413(self, server):
        import http.client

        from repro.server.daemon import MAX_BODY_BYTES

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            conn.putrequest("POST", "/query")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            assert conn.getresponse().status == 413
        finally:
            conn.close()

    def test_fleet_round_trip(self, client):
        status, body = client.fleet(QUESTION, max_workers=2)
        assert status == 200
        assert len(body["companies"]) == SPEC.count
        assert sum(body["counts"].values()) == SPEC.count
        assert body["aborted"] is False

    def test_fleet_validates_companies_list(self, client):
        status, _ = client.request("POST", "/fleet", {"question": QUESTION, "companies": "oops"})
        assert status == 400
        status, _ = client.request(
            "POST", "/fleet", {"question": QUESTION, "max_workers": 0}
        )
        assert status == 400

    def test_stats_shape(self, client):
        client.query(client.companies()[0], QUESTION)
        stats = client.stats()
        assert stats["epoch"] == 0 and stats["draining"] is False
        assert stats["companies"] == SPEC.count
        assert stats["queue"]["max_pending"] == 4
        assert stats["queue"]["admitted"] >= 1
        assert stats["latency"]["count"] >= 1
        assert stats["latency"]["p50_seconds"] <= stats["latency"]["p99_seconds"]
        assert stats["metrics"]["server_requests"] >= 1

    def test_reload_bumps_epoch(self, client):
        assert client.stats()["epoch"] == 0
        status, body = client.reload()
        assert status == 200
        assert body["new_epoch"] == 1
        assert body["companies"] == SPEC.count
        assert client.stats()["epoch"] == 1
        company = client.companies()[0]
        assert client.query(company, QUESTION)[1]["epoch"] == 1


class TestDeadlines:
    def test_client_can_tighten_but_not_loosen(self, serving_root):
        srv = make_server(serving_root, default_deadline=5.0)
        assert srv._deadline_for({}) == 5.0
        assert srv._deadline_for({"deadline_seconds": 1.5}) == 1.5
        assert srv._deadline_for({"deadline_seconds": 60.0}) == 5.0
        assert srv._deadline_for({"deadline_seconds": 0}) is None
        assert srv._deadline_for({"deadline_seconds": "1"}) is None

    def test_remaining_deadline_tightens_solver_budget(self, serving_root):
        srv = make_server(serving_root)
        base = srv.pipeline.config.solver_budget
        tightened = srv._tightened_budget(0.25)
        assert tightened.timeout_seconds == pytest.approx(
            0.25
            if base.timeout_seconds is None
            else min(base.timeout_seconds, 0.25)
        )
        # Wide remaining time never loosens a tight base budget.
        if base.timeout_seconds is not None:
            wide = srv._tightened_budget(base.timeout_seconds + 100.0)
            assert wide.timeout_seconds == base.timeout_seconds

    def test_expired_deadline_refused_post_admission(self, server):
        # The deadline is re-checked after admission + model resolution;
        # a slow model load that eats the whole budget must produce a
        # structured 503, never a late answer that blows the SLO anyway.
        company = server.companies()[0]
        registry = server._epochs.current_registry
        original_get = registry.get_model

        def slow_get(name):
            model = original_get(name)
            time.sleep(0.2)
            return model

        registry.get_model = slow_get
        try:
            status, body, was_shed = server.handle_query(
                {"company": company, "question": QUESTION, "deadline_seconds": 0.05}
            )
        finally:
            del registry.get_model
        assert status == 503 and was_shed
        assert body["error"] == "deadline"
        assert server.metrics.deadline_refusals == 1


# ---------------------------------------------------------------------------
# Graceful drain via injected stop-flag (PR 7 satellite)
# ---------------------------------------------------------------------------


class TestGracefulDrain:
    def test_in_flight_finishes_and_is_reported(self, serving_root):
        release = threading.Event()
        entered = threading.Event()

        def gated_query(model, question, budget, certify):
            entered.set()
            release.wait(timeout=10.0)
            pipeline = PolicyPipeline()
            return pipeline.query(model, question, budget=budget, certify=certify)

        srv = make_server(serving_root, query_fn=gated_query, warm_on_start=-1)
        srv.start()
        host, port = srv.address
        results = {}

        def in_flight():
            c = ServingClient(host, port, timeout=30.0)
            try:
                results["in_flight"] = c.query(srv.companies()[0], QUESTION)
            finally:
                c.close()

        t = threading.Thread(target=in_flight)
        t.start()
        assert entered.wait(timeout=10.0)

        # The injected stop-flag — no real signal is raised in tier-1.
        assert srv.begin_drain("test-flag") is True
        assert srv.draining

        refused = ServingClient(host, port, timeout=10.0)
        try:
            status, body = refused.query(srv.companies()[0], QUESTION)
            assert status == 503
            assert body["error"] == "draining"
            ready_status, ready_body = refused.readyz()
            assert ready_status == 503 and ready_body["draining"] is True
            health_status, _ = refused.healthz()
            assert health_status == 200, "liveness stays green while draining"
        finally:
            refused.close()

        release.set()
        report = srv.await_drained(timeout=10.0)
        t.join(timeout=10.0)

        assert results["in_flight"][0] == 200, "in-flight query must finish"
        assert report.drained_clean
        assert report.reason == "test-flag"
        assert report.in_flight_at_drain == 1
        assert report.completed_during_drain == 1
        assert report.refused_during_drain >= 1
        assert report.served_total == report.as_dict()["served_total"]
        assert "clean" in report.summary()

    def test_drain_is_idempotent(self, server):
        assert server.begin_drain("first") is True
        assert server.begin_drain("second") is False
        report = server.await_drained(timeout=5.0)
        assert report.reason == "first"
        assert server.metrics.server_drains == 1

    def test_drain_with_nothing_in_flight_is_clean(self, server):
        server.begin_drain("idle")
        report = server.await_drained(timeout=5.0)
        assert report.drained_clean
        assert report.in_flight_at_drain == 0
        assert report.completed_during_drain == 0

    def test_grace_expiry_reported_not_hung(self, serving_root):
        release = threading.Event()
        entered = threading.Event()

        def stuck_query(model, question, budget, certify):
            entered.set()
            release.wait(timeout=30.0)
            raise AssertionError("unreachable in this test")

        srv = make_server(serving_root, query_fn=stuck_query, warm_on_start=-1)
        srv.start()
        host, port = srv.address
        t = threading.Thread(
            target=lambda: ServingClient(host, port, timeout=30.0).query(
                srv.companies()[0], QUESTION
            ),
            daemon=True,
        )
        t.start()
        assert entered.wait(timeout=10.0)
        srv.begin_drain("grace-test")
        report = srv.await_drained(timeout=0.2)
        assert not report.drained_clean, "expired grace must be reported"
        assert "GRACE EXPIRED" in report.summary()
        release.set()
        t.join(timeout=10.0)
