"""Crash-injection matrix for the snapshot commit and journal protocols.

Every durable boundary in ``commit`` and ``commit_update`` is enumerated
by recording one clean run, then killed exactly once per matrix entry.
After each simulated kill the store is reopened cold (as a restarted
process would) and must recover to a hash-valid *pre* or *post* state —
never a hybrid, never a torn file, never a leftover journal.

The whole module carries the ``crash`` marker: CI runs it in its own
lane, and the fast lane deselects it.
"""

from __future__ import annotations

import pytest

from repro.corpus.versions import make_version
from repro.store import SnapshotStore
from repro.store.audit import edge_key
from repro.store.faults import CrashInjector, SimulatedCrash, kill_points, record_steps
from repro.store.snapshot import JOURNAL_NAME, _TMP_PREFIX

pytestmark = pytest.mark.crash


@pytest.fixture(scope="module")
def pre_model(pipeline, small_policy_text):
    return pipeline.process(small_policy_text)


@pytest.fixture(scope="module")
def post_model(pipeline, small_policy_text, pre_model):
    version = make_version(small_policy_text, seed=0)
    updated, _stats = pipeline.update(pre_model, version.text)
    return updated


def signature(model) -> tuple:
    """Comparable identity of a model's durable state."""
    return (
        model.revision,
        tuple(sorted(edge_key(e) for e in model.graph.edges())),
        tuple(sorted(model.data_taxonomy.as_edges())),
        tuple(sorted(model.entity_taxonomy.as_edges())),
        tuple(sorted(model.node_vocabulary)),
    )


def assert_recovered(root, pre_sig, post_sig, context: str) -> None:
    """Reopen the store cold and check it holds exactly pre or post state."""
    store = SnapshotStore(root)
    result = store.load()
    got = signature(result.model)
    assert got in (pre_sig, post_sig), f"hybrid state after {context}"
    assert not (root / JOURNAL_NAME).exists(), f"journal left behind after {context}"
    leftovers = [
        p.name
        for p in (root / "snapshots").iterdir()
        if p.name.startswith(_TMP_PREFIX)
    ]
    assert not leftovers, f"staging dirs {leftovers} left behind after {context}"
    assert not result.quarantined, f"quarantine after {context}"


class TestFaultPrimitives:
    def test_simulated_crash_is_not_an_exception(self):
        # `except Exception` cleanup paths must not be able to swallow it.
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)

    def test_injector_records_without_crashing(self):
        injector = CrashInjector()
        injector("a")
        injector("b")
        assert injector.steps == ["a", "b"]

    def test_injector_kills_nth_occurrence(self):
        injector = CrashInjector("x", occurrence=2)
        injector("x")
        with pytest.raises(SimulatedCrash) as excinfo:
            injector("x")
        assert excinfo.value.step == "x"

    def test_kill_points_number_repeats(self):
        assert kill_points(["a", "b", "a"]) == [("a", 1), ("b", 1), ("a", 2)]


class TestCommitCrashMatrix:
    def test_every_commit_boundary_recovers(
        self, pre_model, post_model, tmp_path
    ):
        schedule = record_steps(
            lambda inj: SnapshotStore(tmp_path / "record", step=inj).commit(
                pre_model
            )
        )
        assert len(schedule) >= 10, schedule
        pre_sig, post_sig = signature(pre_model), signature(post_model)
        for index, (step, occurrence) in enumerate(kill_points(schedule)):
            root = tmp_path / f"kill-{index}"
            SnapshotStore(root).commit(pre_model)
            injector = CrashInjector(step, occurrence=occurrence)
            with pytest.raises(SimulatedCrash):
                SnapshotStore(root, step=injector).commit(post_model)
            assert_recovered(
                root, pre_sig, post_sig, f"commit killed at {step}#{occurrence}"
            )

    def test_crash_before_any_write_preserves_pre_state(
        self, pre_model, post_model, tmp_path
    ):
        root = tmp_path / "store"
        SnapshotStore(root).commit(pre_model)
        injector = CrashInjector("serialize")
        with pytest.raises(SimulatedCrash):
            SnapshotStore(root, step=injector).commit(post_model)
        result = SnapshotStore(root).load()
        assert signature(result.model) == signature(pre_model)


class TestUpdateJournalCrashMatrix:
    def test_every_journaled_boundary_recovers(
        self, pre_model, post_model, tmp_path
    ):
        record_root = tmp_path / "record"
        SnapshotStore(record_root).commit(pre_model)
        schedule = record_steps(
            lambda inj: SnapshotStore(record_root, step=inj).commit_update(
                post_model
            )
        )
        # The journaled protocol brackets the plain commit.
        assert "journal_begin" in schedule and "journal_clear" in schedule
        pre_sig, post_sig = signature(pre_model), signature(post_model)
        outcomes: set[tuple] = set()
        for index, (step, occurrence) in enumerate(kill_points(schedule)):
            root = tmp_path / f"kill-{index}"
            SnapshotStore(root).commit(pre_model)
            injector = CrashInjector(step, occurrence=occurrence)
            with pytest.raises(SimulatedCrash):
                SnapshotStore(root, step=injector).commit_update(post_model)
            assert_recovered(
                root, pre_sig, post_sig, f"update killed at {step}#{occurrence}"
            )
            outcomes.add(signature(SnapshotStore(root).load().model))
        # The matrix must exercise both recovery directions: early kills
        # roll back to the base, late kills roll forward to the successor.
        assert outcomes == {pre_sig, post_sig}

    def test_update_after_recovery_continues_cleanly(
        self, pre_model, post_model, tmp_path
    ):
        root = tmp_path / "store"
        SnapshotStore(root).commit(pre_model)
        injector = CrashInjector("rename_snapshot")
        with pytest.raises(SimulatedCrash):
            SnapshotStore(root, step=injector).commit_update(post_model)
        # A fresh process can retry the same update and end on post-state.
        store = SnapshotStore(root)
        store.commit_update(post_model)
        assert signature(store.load().model) == signature(post_model)
