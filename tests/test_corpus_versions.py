"""Tests for the policy-version mutation generator."""

import pytest

from repro.corpus.generator import GeneratorProfile, PolicyGenerator
from repro.corpus.versions import make_version
from repro.errors import CorpusError


@pytest.fixture(scope="module")
def base_policy():
    profile = GeneratorProfile(company="VerCo", platform="VerCo", seed=31)
    return PolicyGenerator(profile).generate(3000)


class TestMakeVersion:
    def test_deterministic(self, base_policy):
        a = make_version(base_policy.text, seed=1)
        b = make_version(base_policy.text, seed=1)
        assert a.text == b.text
        assert a.edits == b.edits

    def test_edit_counts(self, base_policy):
        version = make_version(base_policy.text, seed=2, add=3, remove=2, recondition=1)
        kinds = [e.kind for e in version.edits]
        assert kinds.count("add") == 3
        assert kinds.count("remove") == 2
        assert kinds.count("recondition") == 1

    def test_removed_sentences_gone(self, base_policy):
        version = make_version(base_policy.text, seed=3, add=0, remove=3, recondition=0)
        for edit in version.edits:
            assert edit.sentence not in version.text

    def test_added_sentences_present(self, base_policy):
        version = make_version(base_policy.text, seed=4, add=3, remove=0, recondition=0)
        for edit in version.edits:
            assert edit.sentence in version.text

    def test_reconditioned_sentences_replaced(self, base_policy):
        version = make_version(base_policy.text, seed=5, add=0, remove=0, recondition=3)
        for edit in version.edits:
            assert edit.sentence not in version.text
            assert edit.revised in version.text

    def test_too_many_edits_rejected(self):
        with pytest.raises(CorpusError):
            make_version("We collect data.", remove=10, recondition=10)


class TestVersionDiffIntegration:
    def test_diff_recovers_edits(self, pipeline, base_policy):
        from repro.analysis import diff_policies
        from repro.core.extraction import extract_policy

        version = make_version(base_policy.text, seed=7, add=2, remove=2, recondition=2)
        old = extract_policy(pipeline.runner, base_policy.text, company="VerCo")
        new = extract_policy(pipeline.runner, version.text, company="VerCo")
        diff = diff_policies(old, new)

        # Every textual edit shows up at segment level: 2 adds + 2 removes +
        # 2 recondition (remove+add pairs).
        assert len(diff.segments.added) == 4
        assert len(diff.segments.removed) == 4
        # Practice-level effects: new disclosures appear, removed ones go.
        assert diff.added_practices
        assert diff.removed_practices

    def test_incremental_update_cost_matches_edits(self, pipeline, base_policy):
        version = make_version(base_policy.text, seed=8, add=2, remove=1, recondition=1)
        model = pipeline.process(base_policy.text)
        _new_model, stats = pipeline.update(model, version.text)
        # add(2) + recondition(1 new form) = 3 re-extracted segments.
        assert stats.segments_reextracted == 3
        assert stats.segments_removed == 2  # removed(1) + recondition old form
