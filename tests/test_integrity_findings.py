"""Unit tests for the typed finding model (fast lane: no marker).

These cover the pure data layer — severity ordering, report rollups,
merging, and the quarantine-report conversion — without touching disk,
so they run in the default deselection lane.
"""

from __future__ import annotations

import json

from repro.integrity.findings import (
    FAMILIES,
    KIND_HASH_MISMATCH,
    KIND_TORN_TAIL,
    SCAN_COUNTERS,
    Finding,
    IntegrityReport,
    Severity,
    findings_from_quarantine,
)
from repro.store.snapshot import QuarantineReport


def _finding(**overrides) -> Finding:
    base = dict(
        family="store",
        kind=KIND_HASH_MISMATCH,
        severity=Severity.ERROR,
        path="/x/snapshots/snap-000001",
        root="/x",
        detail="sha256 mismatch",
        subject="snap-000001",
        repairable=True,
    )
    base.update(overrides)
    return Finding(**base)


class TestSeverity:
    def test_total_order(self):
        assert Severity.INFO < Severity.WARN < Severity.ERROR < Severity.CRITICAL

    def test_str_is_lowercase_name(self):
        assert str(Severity.WARN) == "warn"
        assert str(Severity.CRITICAL) == "critical"

    def test_families_cover_every_durable_artifact(self):
        assert FAMILIES == ("store", "registry", "checkpoint", "cassette", "certs")


class TestFinding:
    def test_summary_names_severity_family_kind_and_path(self):
        text = _finding().summary()
        assert "error" in text
        assert "store/hash-mismatch" in text
        assert "/x/snapshots/snap-000001" in text

    def test_as_dict_is_json_serializable(self):
        payload = json.loads(json.dumps(_finding().as_dict()))
        assert payload["family"] == "store"
        assert payload["severity"] == "error"
        assert payload["repairable"] is True

    def test_unrepairable_is_loud_in_summary(self):
        assert "UNREPAIRABLE" in _finding(repairable=False).summary()


class TestIntegrityReport:
    def test_empty_report_is_clean(self):
        report = IntegrityReport(root="/x")
        assert report.clean
        assert report.max_severity is None
        assert "clean" in report.summary()

    def test_rollups_split_repairable_from_unrepairable(self):
        report = IntegrityReport(root="/x")
        report.add(_finding())
        report.add(_finding(repairable=False, severity=Severity.CRITICAL))
        assert not report.clean
        assert len(report.repairable) == 1
        assert len(report.unrepairable) == 1
        assert report.max_severity is Severity.CRITICAL

    def test_counters_track_scan_volume(self):
        report = IntegrityReport(root="/x")
        for name in SCAN_COUNTERS:
            assert report.scanned[name] == 0
        report.count("snapshots")
        report.count("artifacts", 7)
        assert report.scanned["snapshots"] == 1
        assert report.scanned["artifacts"] == 7

    def test_merge_sums_counters_and_extends_findings(self):
        a = IntegrityReport(root="/x")
        a.count("stores")
        a.add(_finding())
        b = IntegrityReport(root="/x/sub")
        b.count("stores")
        b.add(_finding(kind=KIND_TORN_TAIL, family="checkpoint"))
        a.merge(b)
        assert a.scanned["stores"] == 2
        assert len(a.findings) == 2

    def test_summary_orders_most_severe_first(self):
        report = IntegrityReport(root="/x")
        report.add(_finding(severity=Severity.INFO, detail="minor"))
        report.add(_finding(severity=Severity.CRITICAL, detail="major"))
        lines = report.summary().splitlines()
        assert "major" in lines[1]
        assert "minor" in lines[2]

    def test_by_kind_groups(self):
        report = IntegrityReport(root="/x")
        report.add(_finding())
        report.add(_finding(kind=KIND_TORN_TAIL))
        groups = report.by_kind()
        assert set(groups) == {KIND_HASH_MISMATCH, KIND_TORN_TAIL}


class TestQuarantineConversion:
    def test_quarantine_reports_become_store_findings(self):
        reports = [
            QuarantineReport(
                snapshot_id="snap-000003",
                reason="hash verification failed",
                failures=["graph.json: sha256 mismatch"],
                quarantined_to="/x/quarantine/snap-000003",
            )
        ]
        findings = findings_from_quarantine(reports, "/x")
        assert len(findings) == 1
        f = findings[0]
        assert f.family == "store"
        assert f.kind == KIND_HASH_MISMATCH
        assert f.subject == "snap-000003"
        assert not f.repairable  # already quarantined: evidence, not a plan
        assert "sha256 mismatch" in f.detail
