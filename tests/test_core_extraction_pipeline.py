"""Unit/integration tests for Phase 1 extraction and the full pipeline."""

import pytest

from repro import PipelineConfig, PolicyPipeline, Verdict
from repro.core.extraction import extract_company, extract_policy, extract_segment
from repro.core.segmenter import segment_policy
from repro.errors import QueryError


class TestExtractCompany:
    def test_small_policy(self, runner, small_policy_text):
        assert extract_company(runner, small_policy_text) == "Acme"

    def test_uses_only_opening(self, runner):
        text = "Zebra Privacy Policy. " + "filler " * 400 + "OtherCorp appears late."
        assert extract_company(runner, text) == "Zebra"


class TestExtractSegment:
    def test_coreference_applied_before_extraction(self, runner):
        seg = segment_policy("We collect your email address.")[0]
        practices = extract_segment(runner, seg, "Acme")
        assert practices[0].sender == "Acme"

    def test_opp115_categories_attached(self, runner):
        seg = segment_policy("We collect your email address.")[0]
        practices = extract_segment(runner, seg, "Acme")
        assert "Contact" in practices[0].opp115_categories

    def test_vague_terms_annotated(self, runner):
        seg = segment_policy(
            "We share usage information with partners for legitimate business purposes."
        )[0]
        practices = extract_segment(runner, seg, "Acme")
        vague = [v for p in practices for v in p.vague_terms]
        assert ("legitimate business purposes", "legitimate_business_purpose") in vague


class TestExtractPolicy:
    def test_full_extraction(self, runner, small_policy_text):
        result = extract_policy(runner, small_policy_text)
        assert result.company == "Acme"
        assert result.num_practices > 10
        assert result.segments

    def test_practices_indexed_by_segment(self, runner, small_policy_text):
        result = extract_policy(runner, small_policy_text)
        total = sum(len(v) for v in result.practices_by_segment.values())
        assert total == result.num_practices

    def test_cached_segments_skipped(self, runner, small_policy_text):
        first = extract_policy(runner, small_policy_text)
        cached = dict(first.practices_by_segment)

        class ExplodingLLM:
            def complete(self, prompt):
                raise AssertionError("LLM called despite full cache")

        from repro.llm.tasks import TaskRunner

        strict_runner = TaskRunner(ExplodingLLM())
        result = extract_policy(
            strict_runner, small_policy_text, company="Acme", cached=cached
        )
        assert result.num_practices == first.num_practices

    def test_negated_practice_found(self, runner, small_policy_text):
        result = extract_policy(runner, small_policy_text)
        negated = [p for p in result.practices if not p.permission]
        assert negated
        assert any("contact information" in p.data_type for p in negated)


class TestPipelineProcess:
    def test_model_contents(self, small_model):
        assert small_model.company == "Acme"
        stats = small_model.statistics
        assert stats.total_edges > 10
        assert stats.entities >= 3
        assert stats.data_types >= 5
        assert len(small_model.data_taxonomy) > 3
        small_model.data_taxonomy.validate()
        small_model.entity_taxonomy.validate()

    def test_embeddings_cover_nodes(self, small_model):
        for node in small_model.graph.graph.nodes:
            assert node in small_model.store

    def test_practices_have_provenance(self, small_model):
        seg_ids = {s.segment_id for s in small_model.extraction.segments}
        for p in small_model.extraction.practices:
            assert p.segment_id in seg_ids


class TestPipelineQuery:
    def test_valid_query(self, pipeline, small_model):
        outcome = pipeline.query(small_model, "Acme collects the name.")
        assert outcome.verdict is Verdict.VALID

    def test_vocabulary_bridging(self, pipeline, small_model):
        # Policy says "email address"; the query says "e-mail address"
        # (hyphenated variant known to the synonym table).
        outcome = pipeline.query(small_model, "Acme collects the e-mail address.")
        assert outcome.verdict is Verdict.VALID
        assert any(t.changed for t in outcome.translations.values())

    def test_conditional_sharing_reported(self, pipeline, small_model):
        outcome = pipeline.query(
            small_model, "Acme shares location information with advertisers."
        )
        assert outcome.verdict is Verdict.INVALID
        assert outcome.verification.conditionally_valid is True
        assert "user_consent" in outcome.verification.depends_on

    def test_denied_practice(self, pipeline, small_model):
        outcome = pipeline.query(
            small_model, "Acme sells contact information to third parties."
        )
        assert outcome.verdict is Verdict.INVALID

    def test_unparseable_query_raises(self, pipeline, small_model):
        with pytest.raises(QueryError):
            pipeline.query(small_model, "blue sky happy")

    def test_summary_readable(self, pipeline, small_model):
        outcome = pipeline.query(small_model, "Acme collects the name.")
        text = outcome.summary()
        assert "verdict: VALID" in text


class TestPipelineUpdate:
    def test_noop_update_reuses_everything(self, pipeline, small_policy_text):
        model = pipeline.process(small_policy_text)
        new_model, stats = pipeline.update(model, small_policy_text)
        assert stats.segments_reextracted == 0
        assert stats.reuse_fraction == 1.0
        assert new_model.statistics.total_edges == model.statistics.total_edges

    def test_appended_sentence_only_new_segment_extracted(
        self, pipeline, small_policy_text
    ):
        model = pipeline.process(small_policy_text)
        updated_text = small_policy_text + "\nWe collect your shoe size.\n"
        new_model, stats = pipeline.update(model, updated_text)
        assert stats.segments_reextracted == 1
        assert stats.segments_removed == 0
        assert "shoe size" in new_model.graph.graph

    def test_removed_sentence_detected(self, pipeline, small_policy_text):
        model = pipeline.process(small_policy_text)
        shortened = small_policy_text.replace(
            "We delete your message content after 90 days.", ""
        )
        _new_model, stats = pipeline.update(model, shortened)
        assert stats.segments_removed == 1


class TestArtifacts:
    def test_save_artifacts(self, pipeline, small_model, tmp_path):
        pipeline.save_artifacts(small_model, tmp_path)
        for name in (
            "segments.json",
            "practices.json",
            "data_taxonomy.json",
            "entity_taxonomy.json",
            "graph_stats.json",
            "embeddings.npz",
        ):
            assert (tmp_path / name).exists(), name

    def test_artifacts_parse_back(self, pipeline, small_model, tmp_path):
        import json

        pipeline.save_artifacts(small_model, tmp_path)
        practices = json.loads((tmp_path / "practices.json").read_text())
        assert len(practices) == small_model.extraction.num_practices
        assert {"sender", "action", "data_type"} <= set(practices[0])


class TestLLMUsageAccounting:
    def test_stats_exposed(self, small_policy_text):
        pipe = PolicyPipeline()
        pipe.process(small_policy_text)
        stats = pipe.llm.stats
        assert stats.calls > 0
        assert "extract_parameters" in stats.calls_by_task
