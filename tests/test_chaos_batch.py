"""Chaos suite: batch verification under injected faults.

Drives ``query_batch`` over a 24-question suite while a seeded
:class:`FaultInjectingLLM` kills ~30% of completions and a
:class:`BudgetStarvingPipeline` starves the solver for two questions.
The batch must complete without raising, convert exactly the affected
queries into ERROR/degraded outcomes, and keep every unaffected query's
trace byte-identical to a fault-free run — at every worker count.

All faults are content-keyed (prompt hashes, question text), never
call-order-keyed, so the affected set is a property of the suite, not of
thread scheduling.  Marked ``chaos``: run with ``pytest -m chaos``.
"""

from __future__ import annotations

import json

import pytest

from repro import PolicyPipeline, Verdict
from repro.core.pipeline import ErrorOutcome
from repro.llm.client import CachedLLM
from repro.llm.simulated import SimulatedLLM
from repro.resilience import RetryingLLM, RetryPolicy, is_budget_limited
from repro.resilience.faults import BudgetStarvingPipeline, FaultInjectingLLM

pytestmark = pytest.mark.chaos

DISTINCT_QUERIES = [
    "Acme collects the email address.",
    "Acme collects the phone number.",
    "Does Acme collect my name?",
    "Acme shares the usage information with analytics providers.",
    "Acme shares the location information with advertisers.",
    "Acme sells the contact information.",
    "Law enforcement receives the personal information.",
    "Acme collects the message content.",
]
QUERY_SUITE = DISTINCT_QUERIES * 3  # 24 queries, repeats share prompts

FAULT_RATE = 0.3
# Chosen so the injected faults land on some queries but not on the two
# starved ones (designation is a pure function of seed and prompt text,
# so this is stable, not flaky).
FAULT_SEED = 6
STARVED_QUESTIONS = (
    "Does Acme collect my name?",
    "Acme sells the contact information.",
)
WORKER_COUNTS = (1, 4, 8)


def _trace(outcome) -> str:
    return json.dumps(outcome.as_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def baseline(small_policy_text):
    """Fault-free traces per question, from a sequential query loop."""
    pipeline = PolicyPipeline()
    model = pipeline.process(small_policy_text)
    return {q: _trace(pipeline.query(model, q)) for q in DISTINCT_QUERIES}


def _chaos_batch(small_policy_text, *, max_workers, failures_per_prompt=None):
    """One chaos run: fresh injector, fresh model, fresh caches."""
    injector = FaultInjectingLLM(
        SimulatedLLM(),
        rate=FAULT_RATE,
        seed=FAULT_SEED,
        failures_per_prompt=failures_per_prompt,
    )
    pipeline = BudgetStarvingPipeline(
        llm=CachedLLM(injector),
        starve_questions=STARVED_QUESTIONS,
    )
    model = PolicyPipeline().process(small_policy_text)
    batch = pipeline.query_batch(model, QUERY_SUITE, max_workers=max_workers)
    return batch, injector


class TestChaosBatch:
    def test_suite_is_large_enough(self):
        assert len(QUERY_SUITE) >= 20

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_batch_survives_and_isolates_faults(
        self, small_policy_text, baseline, workers
    ):
        batch, injector = _chaos_batch(small_policy_text, max_workers=workers)

        # Completed without raising, order preserved.
        assert [o.question for o in batch.outcomes] == QUERY_SUITE
        assert injector.faults_injected > 0

        error_questions = {o.question for o in batch.errors}
        assert error_questions, "the chosen seed must fault at least one query"
        assert len(error_questions) < len(DISTINCT_QUERIES)
        # The starved queries must remain distinguishable from LLM faults.
        assert error_questions.isdisjoint(STARVED_QUESTIONS)

        for outcome in batch.outcomes:
            if isinstance(outcome, ErrorOutcome):
                assert outcome.error_type == "InjectedFaultError"
                assert outcome.stage == "parse"
            elif outcome.question in STARVED_QUESTIONS:
                # Degraded, not failed: structured UNKNOWN with a budget
                # reason (the paper's solver-timeout case).
                assert outcome.verdict is Verdict.UNKNOWN
                assert is_budget_limited(outcome.verification)
            else:
                # Unaffected: byte-identical to the fault-free run.
                assert _trace(outcome) == baseline[outcome.question]

        assert batch.metrics.query_errors == len(batch.errors)

    def test_affected_set_is_identical_across_worker_counts(
        self, small_policy_text
    ):
        runs = [
            _chaos_batch(small_policy_text, max_workers=w)[0]
            for w in WORKER_COUNTS
        ]
        reference = runs[0]
        ref_errors = [
            (o.question, o.stage, o.error_type) for o in reference.errors
        ]
        ref_traces = [
            _trace(o)
            for o in reference.outcomes
            if not isinstance(o, ErrorOutcome)
        ]
        for run in runs[1:]:
            assert [
                (o.question, o.stage, o.error_type) for o in run.errors
            ] == ref_errors
            assert [
                _trace(o)
                for o in run.outcomes
                if not isinstance(o, ErrorOutcome)
            ] == ref_traces
            # Errors occupy the same input slots.
            assert [
                isinstance(o, ErrorOutcome) for o in run.outcomes
            ] == [isinstance(o, ErrorOutcome) for o in reference.outcomes]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_retries_rescue_transient_faults(
        self, small_policy_text, baseline, workers
    ):
        """With faults lasting 2 attempts and a 2-retry budget, the same
        chaos schedule produces zero errors and a fault-free trace."""
        injector = FaultInjectingLLM(
            SimulatedLLM(),
            rate=FAULT_RATE,
            seed=FAULT_SEED,
            failures_per_prompt=2,
        )
        pipeline = PolicyPipeline(
            llm=CachedLLM(
                RetryingLLM(
                    injector,
                    RetryPolicy(max_retries=2),
                    sleep=lambda _: None,
                )
            )
        )
        model = PolicyPipeline().process(small_policy_text)
        batch = pipeline.query_batch(model, QUERY_SUITE, max_workers=workers)
        assert batch.errors == []
        assert injector.faults_injected > 0
        for outcome in batch.outcomes:
            assert _trace(outcome) == baseline[outcome.question]
