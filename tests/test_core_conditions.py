"""Unit tests for structured condition expressions."""

import pytest

from repro.core.conditions import (
    ConditionAnd,
    ConditionAtom,
    ConditionOr,
    atoms_of,
    describe,
    parse_condition,
)


class TestParseCondition:
    def test_single_atom(self):
        expr = parse_condition("with your consent")
        assert isinstance(expr, ConditionAtom)
        assert expr.predicate == "user_consent"

    def test_unrecognized_atom_gets_mangled_name(self):
        expr = parse_condition("if you enable the night mode")
        assert isinstance(expr, ConditionAtom)
        assert expr.predicate.startswith("cond_")

    def test_disjunction(self):
        expr = parse_condition("with your consent or when required by law")
        assert isinstance(expr, ConditionOr)
        names = [a.predicate for a in atoms_of(expr)]
        assert names == ["user_consent", "required_by_law"]

    def test_conjunction(self):
        expr = parse_condition(
            "with your consent AND when required by law"
        )
        assert isinstance(expr, ConditionAnd)

    def test_or_binds_looser_than_and(self):
        expr = parse_condition("a1 and b2 or c3")
        assert isinstance(expr, ConditionOr)
        left, right = expr.operands
        assert isinstance(left, ConditionAnd)
        assert isinstance(right, ConditionAtom)

    def test_uppercase_connectives(self):
        expr = parse_condition("with your consent OR for security purposes")
        assert isinstance(expr, ConditionOr)

    def test_describe(self):
        text = describe(parse_condition("with your consent or when required by law"))
        assert text == "(user_consent OR required_by_law)"


class TestEncodingIntegration:
    def test_disjunctive_condition_either_branch_unlocks(self):
        from repro.core.encode import encode_query
        from repro.core.graphs import PolicyGraph
        from repro.core.parameters import annotate
        from repro.core.subgraph import extract_subgraph
        from repro.fol.builder import negate
        from repro.fol.formula import PredicateSymbol
        from repro.llm.tasks import ExtractedParameters
        from repro.solver import Solver

        practice = annotate(
            ExtractedParameters(
                sender="acme",
                receiver="advertisers",
                subject="user",
                data_type="email",
                action="share",
                condition="with your consent or when required by law",
                permission=True,
            ),
            segment_id="s1",
            segment_index=0,
        )
        graph = PolicyGraph("Acme")
        graph.add_practice(practice)
        sub = extract_subgraph(graph, ["email"], [])
        query = ExtractedParameters(
            sender="acme",
            receiver=None,
            subject="user",
            data_type="email",
            action="share",
            condition=None,
            permission=True,
        )
        encoded = encode_query(sub, query)
        assert {"user_consent", "required_by_law"} <= set(encoded.uninterpreted)

        solver = Solver()
        for formula in encoded.policy_formulas:
            solver.assert_formula(formula)
        solver.assert_formula(negate(encoded.query_formula))

        consent = PredicateSymbol("user_consent", (), uninterpreted=True)()
        law = PredicateSymbol("required_by_law", (), uninterpreted=True)()
        # Either disjunct alone forces the practice (and refutes ¬query).
        assert solver.check_sat_assuming([consent]).is_unsat
        assert solver.check_sat_assuming([law]).is_unsat
        # With both false the query does not follow.
        from repro.fol.builder import negate as neg

        assert solver.check_sat_assuming([neg(consent), neg(law)]).is_sat

    def test_corpus_compound_conditions_survive_pipeline(self, pipeline):
        from repro.corpus.generator import GeneratorProfile, PolicyGenerator

        doc = PolicyGenerator(
            GeneratorProfile(company="CondCo", platform="CondCo", seed=5)
        ).generate(3000)
        assert "with your consent or when required by law" in doc.text
        model = pipeline.process(doc.text)
        compound = [
            e
            for e in model.graph.edges()
            if e.condition and " or " in e.condition
        ]
        assert compound
