"""Unit tests for segmentation, content hashing, and diffing."""

from repro.core.segmenter import Segment, diff_segments, segment_policy


class TestSegmentPolicy:
    def test_sentences_become_segments(self):
        segments = segment_policy("We collect data. We share data.")
        assert len(segments) == 2

    def test_headings_set_section_and_are_dropped(self):
        text = "1. Data Collection\nWe collect your email address."
        segments = segment_policy(text)
        assert len(segments) == 1
        assert segments[0].section == "Data Collection"

    def test_short_fragments_dropped(self):
        segments = segment_policy("Privacy Policy\nWe collect your email address.")
        texts = [s.text for s in segments]
        assert all("Privacy Policy" != t for t in texts)

    def test_exact_duplicates_collapse(self):
        segments = segment_policy("We collect data here. We collect data here.")
        assert len(segments) == 1

    def test_indices_sequential(self):
        segments = segment_policy("We collect data. We share data. We delete data.")
        assert [s.index for s in segments] == [0, 1, 2]

    def test_ids_are_stable_content_hashes(self):
        a = segment_policy("We collect your email.")[0]
        b = segment_policy("Intro text here first.\nWe collect your email.")[-1]
        assert a.segment_id == b.segment_id

    def test_id_whitespace_insensitive(self):
        assert Segment.compute_id("We  collect data") == Segment.compute_id(
            "we collect data"
        )

    def test_id_content_sensitive(self):
        assert Segment.compute_id("We collect email") != Segment.compute_id(
            "We collect location"
        )


class TestDiffSegments:
    def _segs(self, text):
        return segment_policy(text)

    def test_identical_versions_all_unchanged(self):
        old = self._segs("We collect data. We share data.")
        new = self._segs("We collect data. We share data.")
        diff = diff_segments(old, new)
        assert not diff.added and not diff.removed
        assert len(diff.unchanged) == 2
        assert diff.reuse_fraction == 1.0

    def test_added_segment_detected(self):
        old = self._segs("We collect data here.")
        new = self._segs("We collect data here. We share data too.")
        diff = diff_segments(old, new)
        assert len(diff.added) == 1
        assert diff.added[0].text == "We share data too."

    def test_removed_segment_detected(self):
        old = self._segs("We collect data here. We share data too.")
        new = self._segs("We collect data here.")
        diff = diff_segments(old, new)
        assert len(diff.removed) == 1

    def test_modified_segment_is_add_plus_remove(self):
        old = self._segs("We collect your email address.")
        new = self._segs("We collect your email address and phone number.")
        diff = diff_segments(old, new)
        assert len(diff.added) == 1 and len(diff.removed) == 1

    def test_moved_segment_is_unchanged(self):
        old = self._segs("First statement sentence. Second statement sentence.")
        new = self._segs("Second statement sentence. First statement sentence.")
        diff = diff_segments(old, new)
        assert not diff.added and not diff.removed

    def test_reuse_fraction_partial(self):
        old = self._segs("We collect data here.")
        new = self._segs("We collect data here. We share data too.")
        diff = diff_segments(old, new)
        assert diff.reuse_fraction == 0.5

    def test_empty_to_empty(self):
        diff = diff_segments([], [])
        assert diff.reuse_fraction == 1.0
