"""Unit tests for the Taxonomy structure and Chain-of-Layer induction."""

import pytest

from repro.core.hierarchy import Taxonomy, chain_of_layer
from repro.embeddings.model import EmbeddingModel
from repro.errors import HierarchyError


class TestTaxonomy:
    def _tree(self):
        t = Taxonomy(root="data")
        t.add("personal data", "data")
        t.add("email", "personal data")
        t.add("email address", "email")
        t.add("technical data", "data")
        return t

    def test_membership(self):
        t = self._tree()
        assert "email" in t
        assert "data" in t
        assert "missing" not in t

    def test_len_counts_root(self):
        assert len(self._tree()) == 5

    def test_parent_child(self):
        t = self._tree()
        assert t.parent("email") == "personal data"
        assert t.children("personal data") == ["email"]

    def test_ancestors_chain(self):
        t = self._tree()
        assert t.ancestors("email address") == ["email", "personal data", "data"]

    def test_descendants(self):
        t = self._tree()
        assert set(t.descendants("personal data")) == {"email", "email address"}

    def test_depth(self):
        t = self._tree()
        assert t.depth("data") == 0
        assert t.depth("email address") == 3
        assert t.max_depth() == 3

    def test_is_ancestor(self):
        t = self._tree()
        assert t.is_ancestor("personal data", "email address")
        assert not t.is_ancestor("technical data", "email")
        assert t.is_ancestor("data", "email")  # root is ancestor of all

    def test_duplicate_add_rejected(self):
        t = self._tree()
        with pytest.raises(HierarchyError):
            t.add("email", "technical data")

    def test_missing_parent_rejected(self):
        t = self._tree()
        with pytest.raises(HierarchyError):
            t.add("new term", "nonexistent parent")

    def test_as_edges(self):
        t = Taxonomy(root="data")
        t.add("personal data", "data")
        assert t.as_edges() == [("data", "personal data")]

    def test_validate_passes_on_good_tree(self):
        self._tree().validate()


class TestChainOfLayer:
    def test_every_term_appears_exactly_once(self, runner):
        terms = [
            "email",
            "email address",
            "phone number",
            "ip address",
            "device model",
            "gps location",
            "watch history",
            "nonsense term xyz",
        ]
        taxonomy = chain_of_layer(runner, terms, "data")
        for term in terms:
            assert term in taxonomy
        assert len(taxonomy.terms) == len(set(taxonomy.terms))

    def test_layering_places_specific_under_general(self, runner):
        taxonomy = chain_of_layer(
            runner, ["location information", "precise location information"], "data"
        )
        assert taxonomy.parent("precise location information") == "location information"

    def test_neutral_suffix_specialization(self, runner):
        taxonomy = chain_of_layer(runner, ["email", "email address"], "data")
        assert taxonomy.parent("email address") == "email"

    def test_seed_categories_created_dynamically(self, runner):
        taxonomy = chain_of_layer(runner, ["email", "ip address"], "data")
        assert taxonomy.parent("email") == "personal data"
        assert taxonomy.parent("personal data") == "data"
        assert taxonomy.parent("ip address") == "technical data"

    def test_unknown_terms_fall_back_to_root(self, runner):
        taxonomy = chain_of_layer(runner, ["flibbertigibbet"], "data")
        assert taxonomy.parent("flibbertigibbet") in ("data",)

    def test_similarity_filter_rejects_weak_links(self, runner):
        # An absurd threshold forces every assignment through the filter,
        # so everything lands on the root.
        taxonomy = chain_of_layer(
            runner,
            ["email", "ip address"],
            "data",
            similarity_model=EmbeddingModel(),
            similarity_threshold=1.1,
        )
        assert taxonomy.parent("email") == "data"
        assert taxonomy.parent("ip address") == "data"

    def test_duplicates_and_root_ignored(self, runner):
        taxonomy = chain_of_layer(runner, ["email", "Email", "data"], "data")
        assert len([t for t in taxonomy.terms if t == "email"]) == 1

    def test_entity_taxonomy(self, runner):
        taxonomy = chain_of_layer(
            runner, ["advertisers", "service providers", "law enforcement"], "entity"
        )
        assert taxonomy.parent("advertisers") == "commercial partner"
        assert taxonomy.parent("law enforcement") == "legal authority"
        taxonomy.validate()
