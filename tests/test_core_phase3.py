"""Unit tests for Phase 3: translation, subgraph, encoding, verification."""

import pytest

from repro.core.encode import encode_query
from repro.core.graphs import PolicyGraph
from repro.core.hierarchy import Taxonomy
from repro.core.parameters import annotate
from repro.core.subgraph import extract_subgraph
from repro.core.translation import translate_query_terms, translate_term
from repro.core.verify import Verdict, verify_encoded
from repro.embeddings.store import EmbeddingStore
from repro.llm.tasks import ExtractedParameters


def _practice(sender, action, data_type, receiver=None, condition=None, permission=True, seg="s1"):
    return annotate(
        ExtractedParameters(
            sender=sender,
            receiver=receiver,
            subject="user",
            data_type=data_type,
            action=action,
            condition=condition,
            permission=permission,
        ),
        segment_id=seg,
        segment_index=0,
    )


@pytest.fixture()
def graph():
    taxonomy = Taxonomy(root="data")
    taxonomy.add("contact information", "data")
    taxonomy.add("email", "contact information")
    taxonomy.add("phone number", "contact information")
    taxonomy.add("location", "data")
    g = PolicyGraph("Acme", data_taxonomy=taxonomy)
    g.add_practices(
        [
            _practice("acme", "collect", "email"),
            _practice("acme", "share", "contact information", receiver="advertisers",
                      condition="with your consent"),
            _practice("acme", "collect", "location"),
            _practice("acme", "sell", "email", permission=False),
            _practice("user", "provide", "phone number"),
        ]
    )
    return g


def _query(sender, action, data_type, receiver=None):
    return ExtractedParameters(
        sender=sender,
        receiver=receiver,
        subject="user",
        data_type=data_type,
        action=action,
        condition=None,
        permission=True,
    )


class TestTranslation:
    def _store(self, terms):
        store = EmbeddingStore()
        store.add_many(terms)
        return store

    def test_exact_match_identity(self, runner):
        store = self._store(["email", "location"])
        result = translate_term(runner, store, "email")
        assert result.translated == "email"
        assert result.verified

    def test_variant_translated(self, runner):
        store = self._store(["email", "location"])
        result = translate_term(runner, store, "email address")
        assert result.translated == "email"
        assert result.verified and result.changed

    def test_vocabulary_restriction(self, runner):
        store = self._store(["email", "user provide email"])
        result = translate_term(runner, store, "email address", vocabulary={"email"})
        assert result.translated == "email"

    def test_unrelated_term_kept(self, runner):
        store = self._store(["email", "location"])
        result = translate_term(runner, store, "favourite colour")
        assert result.translated == "favourite colour"
        assert not result.verified

    def test_translate_many(self, runner):
        store = self._store(["email"])
        results = translate_query_terms(runner, store, ["email address", ""])
        assert list(results) == ["email address"]


class TestSubgraph:
    def test_direct_match(self, graph):
        sub = extract_subgraph(graph, ["email"], [])
        targets = {e.target for e in sub.edges}
        assert "email" in targets

    def test_hierarchy_closure_pulls_parent_edges(self, graph):
        sub = extract_subgraph(graph, ["email"], [])
        targets = {e.target for e in sub.edges}
        assert "contact information" in targets  # parent in closure

    def test_hierarchy_disabled(self, graph):
        sub = extract_subgraph(graph, ["email"], [], use_hierarchy=False)
        targets = {e.target for e in sub.edges}
        assert "contact information" not in targets

    def test_hierarchy_edges_listed(self, graph):
        sub = extract_subgraph(graph, ["email"], [])
        assert ("contact information", "email") in sub.hierarchy_edges

    def test_max_edges_cap(self, graph):
        sub = extract_subgraph(graph, ["email"], [], max_edges=1)
        assert sub.num_edges == 1

    def test_entity_only_query(self, graph):
        sub = extract_subgraph(graph, [], ["advertisers"])
        assert sub.num_edges >= 1

    def test_irrelevant_term_empty(self, graph):
        sub = extract_subgraph(graph, ["blood type"], [])
        assert sub.num_edges == 0


class TestEncoding:
    def test_unconditional_edge_is_fact(self, graph):
        sub = extract_subgraph(graph, ["location"], [])
        encoded = encode_query(sub, _query("acme", "collect", "location"))
        assert encoded.num_policy_formulas >= 1
        assert not encoded.uninterpreted

    def test_condition_becomes_uninterpreted(self, graph):
        sub = extract_subgraph(graph, ["contact information"], [])
        encoded = encode_query(sub, _query("acme", "share", "contact information"))
        assert "user_consent" in encoded.uninterpreted

    def test_hierarchy_axioms_quantified(self, graph):
        sub = extract_subgraph(graph, ["email"], [])
        encoded = encode_query(
            sub, _query("acme", "collect", "email"), include_hierarchy_axioms=True
        )
        from repro.fol.formula import Forall
        from repro.fol.visitor import subformulas

        has_forall = any(
            isinstance(s, Forall)
            for f in encoded.policy_formulas
            for s in subformulas(f)
        )
        assert has_forall

    def test_hierarchy_axioms_can_be_disabled(self, graph):
        sub = extract_subgraph(graph, ["email"], [], use_hierarchy=False)
        encoded = encode_query(
            sub, _query("acme", "collect", "email"), include_hierarchy_axioms=False
        )
        from repro.fol.formula import Forall
        from repro.fol.visitor import subformulas

        assert not any(
            isinstance(s, Forall)
            for f in encoded.policy_formulas
            for s in subformulas(f)
        )

    def test_generic_sender_becomes_existential(self, graph):
        sub = extract_subgraph(graph, ["email"], [])
        encoded = encode_query(sub, _query("anyone", "collect", "email"))
        from repro.fol.formula import Exists

        assert isinstance(encoded.query_formula, Exists)

    def test_constants_deduplicated(self, graph):
        sub = extract_subgraph(graph, ["email"], [])
        encoded = encode_query(sub, _query("acme", "collect", "email"))
        names = [c.name for c in encoded.data_constants.values()]
        assert len(names) == len(set(names))


class TestVerify:
    def test_stated_fact_is_valid(self, graph):
        sub = extract_subgraph(graph, ["location"], [])
        encoded = encode_query(sub, _query("acme", "collect", "location"))
        result = verify_encoded(encoded)
        assert result.verdict is Verdict.VALID
        assert result.policy_consistent is True

    def test_absent_fact_is_invalid(self, graph):
        sub = extract_subgraph(graph, ["location"], [])
        encoded = encode_query(sub, _query("acme", "sell", "location"))
        result = verify_encoded(encoded)
        assert result.verdict is Verdict.INVALID

    def test_conditional_fact_invalid_but_conditionally_valid(self, graph):
        sub = extract_subgraph(graph, ["contact information"], [])
        encoded = encode_query(sub, _query("acme", "share", "contact information"))
        result = verify_encoded(encoded)
        assert result.verdict is Verdict.INVALID
        assert result.conditionally_valid is True
        assert "user_consent" in result.depends_on

    def test_hierarchy_inference_valid(self, graph):
        # Sharing contact information (conditionally) implies, under consent,
        # sharing its subtype email via the inheritance axiom.
        sub = extract_subgraph(graph, ["email"], [])
        encoded = encode_query(sub, _query("acme", "share", "email"))
        result = verify_encoded(encoded)
        assert result.verdict is Verdict.INVALID  # gated on consent
        assert result.conditionally_valid is True

    def test_denied_fact_stays_invalid(self, graph):
        sub = extract_subgraph(graph, ["email"], [])
        encoded = encode_query(sub, _query("acme", "sell", "email"))
        result = verify_encoded(encoded)
        assert result.verdict is Verdict.INVALID
        assert result.conditionally_valid is False  # denial survives conditions

    def test_contradictory_policy_detected(self):
        g = PolicyGraph("Acme")
        g.add_practices(
            [
                _practice("acme", "share", "email"),
                _practice("acme", "share", "email", permission=False, seg="s2"),
            ]
        )
        sub = extract_subgraph(g, ["email"], [])
        encoded = encode_query(sub, _query("acme", "share", "email"))
        result = verify_encoded(encoded)
        assert result.verdict is Verdict.UNKNOWN
        assert result.policy_consistent is False

    def test_smtlib_text_attached(self, graph):
        sub = extract_subgraph(graph, ["location"], [])
        encoded = encode_query(sub, _query("acme", "collect", "location"))
        result = verify_encoded(encoded)
        assert "(check-sat)" in result.smtlib_text

    def test_direct_solver_path_matches_smtlib_path(self, graph):
        sub = extract_subgraph(graph, ["location"], [])
        encoded = encode_query(sub, _query("acme", "collect", "location"))
        via_text = verify_encoded(encoded, via_smtlib=True)
        direct = verify_encoded(encoded, via_smtlib=False)
        assert via_text.verdict == direct.verdict

    def test_summary_mentions_vague_terms(self, graph):
        sub = extract_subgraph(graph, ["contact information"], [])
        encoded = encode_query(sub, _query("acme", "share", "contact information"))
        result = verify_encoded(encoded)
        assert "user_consent" in result.summary()


class TestCounterexampleAndSerialization:
    def test_counterexample_names_falsified_condition(self, graph, runner):
        sub = extract_subgraph(graph, ["contact information"], [])
        encoded = encode_query(sub, _query("acme", "share", "contact information"))
        result = verify_encoded(encoded)
        assert result.verdict is Verdict.INVALID
        assert result.counterexample.get("user_consent") is False

    def test_counterexample_empty_for_valid(self, graph):
        sub = extract_subgraph(graph, ["location"], [])
        encoded = encode_query(sub, _query("acme", "collect", "location"))
        result = verify_encoded(encoded)
        assert result.verdict is Verdict.VALID
        assert result.counterexample == {}

    def test_summary_mentions_counterexample(self, graph):
        sub = extract_subgraph(graph, ["contact information"], [])
        encoded = encode_query(sub, _query("acme", "share", "contact information"))
        result = verify_encoded(encoded)
        assert "counterexample resolves these to false:" in result.summary()

    def test_verification_as_dict_round_trips_json(self, graph):
        import json

        sub = extract_subgraph(graph, ["contact information"], [])
        encoded = encode_query(sub, _query("acme", "share", "contact information"))
        result = verify_encoded(encoded)
        parsed = json.loads(json.dumps(result.as_dict()))
        assert parsed["verdict"] == "INVALID"
        assert parsed["conditionally_valid"] is True
        assert "user_consent" in parsed["depends_on"]


class TestQueryOutcomeSerialization:
    def test_as_dict_json_safe(self, pipeline, small_model):
        import json

        outcome = pipeline.query(small_model, "Acme collects the name.")
        parsed = json.loads(json.dumps(outcome.as_dict()))
        assert parsed["question"] == "Acme collects the name."
        assert parsed["verification"]["verdict"] == "VALID"
        assert parsed["subgraph_edges"] >= 1
