"""Unit tests for the policy corpus: generator, bundled policies, taxonomy."""

import pytest

from repro.corpus import (
    METABOOK_SHOWCASE,
    OPP115_CATEGORIES,
    OPP115_DATA_TYPES,
    POLICY_QUERIES,
    TIKTAK_SHOWCASE,
    GeneratorProfile,
    PolicyGenerator,
    metabook_policy,
    tiktak_policy,
)
from repro.corpus.opp115 import match_categories
from repro.errors import CorpusError


class TestGenerator:
    def _profile(self, seed=1):
        return GeneratorProfile(company="Acme", platform="Acme", seed=seed)

    def test_deterministic_per_seed(self):
        a = PolicyGenerator(self._profile()).generate(2000)
        b = PolicyGenerator(self._profile()).generate(2000)
        assert a.text == b.text

    def test_different_seeds_differ(self):
        a = PolicyGenerator(self._profile(1)).generate(2000)
        b = PolicyGenerator(self._profile(2)).generate(2000)
        assert a.text != b.text

    def test_word_count_near_target(self):
        doc = PolicyGenerator(self._profile()).generate(5000)
        assert 0.7 * 5000 <= doc.word_count <= 1.4 * 5000

    def test_minimum_target_enforced(self):
        with pytest.raises(CorpusError):
            PolicyGenerator(self._profile()).generate(100)

    def test_no_duplicate_sentences(self):
        doc = PolicyGenerator(self._profile()).generate(4000)
        from repro.nlp.tokenizer import sentences

        seen = [s for s in sentences(doc.text) if len(s.split()) > 4]
        # Generated practice sentences are unique; boilerplate may repeat.
        generated = [s for s in seen if s.startswith("We ")]
        assert len(generated) == len(set(generated))

    def test_company_name_in_text(self):
        doc = PolicyGenerator(self._profile()).generate(1000)
        assert "Acme Privacy Policy" in doc.text

    def test_exception_pairs_recorded_and_present(self):
        doc = PolicyGenerator(self._profile()).generate(3000)
        assert doc.exception_pairs
        for pair in doc.exception_pairs:
            assert pair.general_rule in doc.text
            assert pair.exception in doc.text

    def test_incoherent_fraction_respected(self):
        profile = GeneratorProfile(
            company="Acme",
            platform="Acme",
            exception_pairs=10,
            incoherent_exception_fraction=0.2,
        )
        doc = PolicyGenerator(profile).generate(3000)
        incoherent = [p for p in doc.exception_pairs if not p.coherent]
        assert len(incoherent) == 2
        for pair in incoherent:
            assert "with third parties" in pair.exception

    def test_coherent_pairs_have_conditions(self):
        doc = PolicyGenerator(self._profile()).generate(3000)
        for pair in doc.exception_pairs:
            if pair.coherent:
                assert pair.exception != pair.general_rule
                # Carve-out carries a scoping phrase.
                assert len(pair.exception.split()) > 7

    def test_showcase_statements_embedded(self):
        profile = GeneratorProfile(
            company="Acme",
            platform="Acme",
            showcase_statements=("Acme collects your shoe size.",),
        )
        doc = PolicyGenerator(profile).generate(1000)
        assert "Acme collects your shoe size." in doc.text

    def test_sections_present(self):
        doc = PolicyGenerator(self._profile()).generate(3000)
        assert "Information You Provide" in doc.sections
        assert "How We Share Your Information" in doc.sections


class TestBundledPolicies:
    def test_tiktak_scale(self):
        doc = tiktak_policy()
        assert 13_000 <= doc.word_count <= 18_000  # "approximately 15,000 words"

    def test_metabook_scale(self):
        doc = metabook_policy()
        assert doc.word_count >= 40_000  # "over 40,000 words"

    def test_bundled_policies_cached(self):
        assert tiktak_policy() is tiktak_policy()

    def test_showcase_embedded_in_documents(self):
        tk = tiktak_policy()
        for statement, _n in TIKTAK_SHOWCASE:
            assert statement in tk.text
        mb = metabook_policy()
        for statement, _n in METABOOK_SHOWCASE:
            assert statement in mb.text

    def test_companies_named(self):
        assert tiktak_policy().company == "TikTak"
        assert metabook_policy().company == "MetaBook"


class TestOPP115:
    def test_ten_categories(self):
        assert len(OPP115_CATEGORIES) == 10

    def test_match_contact(self):
        assert "Contact" in match_categories("We collect your email address.")

    def test_match_location(self):
        assert "Location" in match_categories("We use gps location for maps.")

    def test_no_match(self):
        assert match_categories("This sentence is about nothing.") == []

    def test_signals_lowercase(self):
        for signals in OPP115_DATA_TYPES.values():
            for s in signals:
                assert s == s.lower()


class TestQueries:
    def test_queries_reference_known_policies(self):
        for q in POLICY_QUERIES:
            assert q.policy in {"tiktak", "metabook"}

    def test_expectations_are_known_classes(self):
        for q in POLICY_QUERIES:
            assert q.expectation in {"valid", "invalid", "conditional", "any"}
