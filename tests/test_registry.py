"""Registry suite: LRU determinism, single-flight loads, mint, provenance.

The :class:`~repro.registry.lru.WarmCache` eviction contract is checked
against a pure-Python reference replay (eviction order must be a
function of the access sequence alone), single-flight loading is checked
with blocking loaders, and a concurrent hammer over disjoint and
overlapping companies asserts the two registry-level guarantees: no
shard is ever loaded twice concurrently, and an evicted model is never
served stale after its store changed on disk.

The generator ground-truth round trip (PR 6 satellite fix) is covered at
the bottom: a cold load from a minted shard must restore the injected
exception pairs exactly, and the contradiction analysis must find the
incoherent ones after the warm start.
"""

from __future__ import annotations

import random
import threading
from collections import defaultdict

import pytest

from repro import PolicyPipeline, RegistryError
from repro.analysis import find_contradictions
from repro.corpus import ground_truth_exception_pairs
from repro.registry import (
    MANIFEST_NAME,
    MintSpec,
    PolicyRegistry,
    WarmCache,
    read_manifest,
)
from repro.store import model_artifacts

SPEC = MintSpec(count=6, seed=11, target_words=(340,))


@pytest.fixture(scope="module")
def registry_root(pipeline, tmp_path_factory):
    root = tmp_path_factory.mktemp("registry") / "reg"
    registry = PolicyRegistry(root, pipeline=pipeline, max_warm=8)
    report = registry.mint(SPEC)
    assert len(report.minted) == SPEC.count
    return root


@pytest.fixture(scope="module")
def registry(pipeline, registry_root):
    return PolicyRegistry(registry_root, pipeline=pipeline, max_warm=8)


# ---------------------------------------------------------------------------
# WarmCache: determinism
# ---------------------------------------------------------------------------


def _reference_lru(capacity: int, accesses: list[str]) -> list[str]:
    """Pure-Python replay: the eviction order the cache must reproduce."""
    resident: list[str] = []
    evicted: list[str] = []
    for key in accesses:
        if key in resident:
            resident.remove(key)
        resident.append(key)
        while len(resident) > capacity:
            evicted.append(resident.pop(0))
    return evicted


class TestWarmCacheDeterminism:
    SEQUENCES = [
        ["a", "b", "c", "d"],
        ["a", "b", "a", "c", "a", "d", "e"],
        ["a", "a", "a", "b", "c", "b", "d", "e", "a"],
        [random.Random(1234).choice("abcdef") for _ in range(200)],
    ]

    @pytest.mark.parametrize("capacity", [1, 2, 3])
    @pytest.mark.parametrize("accesses", SEQUENCES)
    def test_eviction_order_is_a_pure_function_of_accesses(
        self, capacity, accesses
    ):
        evictions: list[str] = []
        cache = WarmCache(capacity, on_evict=evictions.append)
        for key in accesses:
            cache.get(key, lambda key=key: f"model:{key}")
        assert evictions == _reference_lru(capacity, accesses)
        # Residency agrees too, in LRU-first order.
        reference_resident = []
        for key in accesses:
            if key in reference_resident:
                reference_resident.remove(key)
            reference_resident.append(key)
        assert cache.warm_keys() == reference_resident[-capacity:]

    def test_hit_miss_counters(self):
        cache = WarmCache(2)
        cache.get("a", lambda: 1)
        cache.get("a", lambda: 1)
        cache.get("b", lambda: 2)
        cache.get("c", lambda: 3)  # evicts a
        cache.get("a", lambda: 1)  # cold again
        assert (cache.hits, cache.misses, cache.evictions) == (1, 4, 2)

    def test_invalidate_drops_without_counting_eviction(self):
        cache = WarmCache(4)
        cache.get("a", lambda: 1)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.evictions == 0
        assert "a" not in cache

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            WarmCache(0)


# ---------------------------------------------------------------------------
# WarmCache: single-flight concurrency
# ---------------------------------------------------------------------------


class TestWarmCacheSingleFlight:
    def test_concurrent_cold_readers_load_once(self):
        cache = WarmCache(4)
        release = threading.Event()
        loads = []

        def loader():
            release.wait(5.0)
            loads.append(threading.get_ident())
            return object()

        results = []

        def reader():
            results.append(cache.get("k", loader))

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads:
            t.start()
        release.set()
        for t in threads:
            t.join(10.0)
        assert len(loads) == 1
        values = {id(value) for value, _ in results}
        assert len(values) == 1  # everyone saw the one loaded object
        # Exactly one miss (the loader); the waiters count as hits.
        assert cache.misses == 1
        assert cache.hits == 7

    def test_slow_load_does_not_block_other_keys(self):
        cache = WarmCache(4)
        slow_started = threading.Event()
        slow_release = threading.Event()

        def slow_loader():
            slow_started.set()
            slow_release.wait(5.0)
            return "slow"

        slow_thread = threading.Thread(
            target=lambda: cache.get("slow", slow_loader)
        )
        slow_thread.start()
        assert slow_started.wait(5.0)
        # While 'slow' is mid-load, another key must load immediately.
        value, hit = cache.get("fast", lambda: "fast")
        assert (value, hit) == ("fast", False)
        slow_release.set()
        slow_thread.join(5.0)
        assert set(cache.warm_keys()) == {"slow", "fast"}

    @pytest.mark.fleet
    def test_hammer_never_loads_one_key_concurrently(self):
        cache = WarmCache(2)
        lock = threading.Lock()
        active: dict[str, int] = defaultdict(int)
        max_active: dict[str, int] = defaultdict(int)
        source = {k: 0 for k in "abcde"}  # key -> current version

        def loader(key):
            with lock:
                active[key] += 1
                max_active[key] = max(max_active[key], active[key])
            try:
                return (key, source[key])
            finally:
                with lock:
                    active[key] -= 1

        failures: list[str] = []

        def worker(worker_id):
            rng = random.Random(worker_id)
            keys = "abc" if worker_id % 2 else "cde"  # overlap on 'c'
            for _ in range(60):
                key = rng.choice(keys)
                (got_key, _version), _hit = cache.get(
                    key, lambda key=key: loader(key)
                )
                if got_key != key:
                    failures.append(f"asked {key}, got {got_key}")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert failures == []
        assert max(max_active.values()) == 1, max_active

    def test_never_serves_a_stale_evicted_value(self):
        cache = WarmCache(1)
        source = {"a": 0, "b": 0}

        def load(key):
            return cache.get(key, lambda: (key, source[key]))[0]

        assert load("a") == ("a", 0)
        source["a"] = 1  # the store changed while 'a' was warm...
        assert load("a") == ("a", 0)  # ...warm value legitimately served
        load("b")  # capacity 1: evicts 'a'
        assert load("a") == ("a", 1)  # reload sees the new state, not a ghost


# ---------------------------------------------------------------------------
# Registry: mint + warm loads
# ---------------------------------------------------------------------------


class TestMint:
    def test_mint_is_deterministic_across_registries(
        self, pipeline, registry, tmp_path
    ):
        other = PolicyRegistry(tmp_path / "other", pipeline=pipeline)
        report = other.mint(SPEC)
        assert sorted(report.minted) == registry.companies()
        for company in registry.companies():
            ours, theirs = registry.store_for(company), other.store_for(company)
            a = ours.manifest(ours.current_id())["artifacts"]
            b = theirs.manifest(theirs.current_id())["artifacts"]
            assert a == b, f"{company} artifacts diverge across mints"

    def test_remint_is_idempotent(self, registry):
        report = registry.mint(SPEC)
        assert report.minted == []
        assert sorted(report.skipped) == registry.companies()

    def test_unknown_company_raises(self, registry):
        with pytest.raises(RegistryError):
            registry.entry("NoSuchCorp")
        with pytest.raises(RegistryError):
            registry.get_model("NoSuchCorp")

    def test_unknown_sector_rejected(self):
        with pytest.raises(RegistryError):
            MintSpec(count=1, sectors=("underwater-basket-weaving",))

    def test_reopen_adopts_manifest_shard_count(self, pipeline, tmp_path):
        registry = PolicyRegistry(tmp_path / "r", pipeline=pipeline, num_shards=4)
        registry.mint(MintSpec(count=1, seed=1, target_words=(340,)))
        reopened = PolicyRegistry(
            tmp_path / "r", pipeline=pipeline, num_shards=16
        )
        assert reopened.num_shards == 4

    def test_invalid_manifest_is_an_error_not_a_guess(self, pipeline, tmp_path):
        root = tmp_path / "broken"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{ not json", "utf-8")
        with pytest.raises(RegistryError):
            read_manifest(root)
        with pytest.raises(RegistryError):
            PolicyRegistry(root, pipeline=pipeline)


class TestWarmRegistry:
    def test_second_get_is_a_warm_hit(self, pipeline, registry_root):
        registry = PolicyRegistry(registry_root, pipeline=pipeline, max_warm=8)
        company = registry.companies()[0]
        first = registry.get_model(company)
        hits_before = pipeline.metrics.registry_hits
        second = registry.get_model(company)
        assert second is first
        assert pipeline.metrics.registry_hits == hits_before + 1
        assert first.company == company

    def test_eviction_forces_a_reload(self, pipeline, registry_root):
        registry = PolicyRegistry(registry_root, pipeline=pipeline, max_warm=2)
        a, b, c = registry.companies()[:3]
        first = registry.get_model(a)
        registry.get_model(b)
        registry.get_model(c)  # evicts a
        assert a not in registry.cache
        reloaded = registry.get_model(a)
        assert reloaded is not first  # fresh object from disk
        assert reloaded.company == a

    def test_evicted_model_is_reloaded_from_current_store(
        self, pipeline, registry_root
    ):
        registry = PolicyRegistry(registry_root, pipeline=pipeline, max_warm=1)
        a, b = registry.companies()[:2]
        model = registry.get_model(a)
        assert model.revision == 0
        # The store moves on while 'a' is warm.
        bumped = registry.pipeline.load_model(
            registry_root / registry.entry(a).store_dir
        )
        bumped.revision = 7
        registry.store_for(a).commit(bumped)
        registry.get_model(b)  # capacity 1: evicts a
        assert registry.get_model(a).revision == 7  # never the stale ghost

    @pytest.mark.fleet
    def test_concurrent_hammer_single_flight_per_shard(self, registry_root):
        # A dedicated pipeline so the load tracker sees only this test.
        registry = PolicyRegistry(
            registry_root, pipeline=PolicyPipeline(), max_warm=2
        )
        companies = registry.companies()
        lock = threading.Lock()
        active: dict[str, int] = defaultdict(int)
        max_active: dict[str, int] = defaultdict(int)
        original = registry.pipeline.load_model

        def tracked_load(directory, **kwargs):
            key = str(directory)
            with lock:
                active[key] += 1
                max_active[key] = max(max_active[key], active[key])
            try:
                return original(directory, **kwargs)
            finally:
                with lock:
                    active[key] -= 1

        registry.pipeline.load_model = tracked_load
        failures: list[str] = []

        def worker(worker_id):
            rng = random.Random(worker_id)
            # Half the threads hammer a disjoint pair, half overlap.
            pool = (
                companies[:3] if worker_id % 2 else companies[2:]
            )
            for _ in range(20):
                company = rng.choice(pool)
                model = registry.get_model(company)
                if model.company != company:
                    failures.append(f"asked {company}, got {model.company}")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert failures == []
        assert max_active, "hammer never loaded a shard"
        assert max(max_active.values()) == 1, max_active


# ---------------------------------------------------------------------------
# Generator ground truth round-trips through snapshots
# ---------------------------------------------------------------------------


class TestProvenanceRoundTrip:
    def test_cold_load_restores_exception_pairs_exactly(
        self, pipeline, registry_root
    ):
        # A fresh registry so every model comes cold off the disk.
        registry = PolicyRegistry(registry_root, pipeline=pipeline, max_warm=8)
        for company in registry.companies():
            model = registry.get_model(company)
            assert model.provenance is not None, company
            pairs = ground_truth_exception_pairs(model.provenance)
            assert len(pairs) == SPEC.exception_pairs

        # Byte-level: the persisted ground truth equals a regeneration.
        from repro.corpus import PolicyGenerator

        company = SPEC.company_of(0)
        document = PolicyGenerator(SPEC.profile_of(0)).generate(
            SPEC.words_of(0)
        )
        stored = dict(registry.get_model(company).provenance)
        stored.pop("sector")
        stored.pop("target_words")
        assert stored == document.ground_truth()

    def test_contradiction_analysis_scores_after_warm_start(
        self, pipeline, registry_root
    ):
        registry = PolicyRegistry(registry_root, pipeline=pipeline)
        scored = 0
        for company in registry.companies():
            model = registry.get_model(company)
            injected = [
                p
                for p in ground_truth_exception_pairs(model.provenance)
                if not p.coherent
            ]
            if not injected:
                continue
            report = find_contradictions(
                model.extraction.practices, data_taxonomy=model.data_taxonomy
            )
            found = {
                c.denial.params.data_type for c in report.genuine
            }
            for pair in injected:
                # Extraction singularizes ("warranty records" -> "record").
                assert any(
                    d in (pair.data_type, pair.data_type[:-1]) for d in found
                ), f"{company}: injected {pair.data_type!r} not found in {found}"
                scored += 1
        assert scored > 0, "spec injected no incoherent pairs to score"

    def test_real_policy_models_keep_provenance_free_meta(self, small_model):
        assert small_model.provenance is None
        assert b"provenance" not in model_artifacts(small_model)["meta.json"]

    def test_direct_artifact_round_trip(self, pipeline, registry):
        from repro.store import model_from_artifacts

        company = registry.companies()[0]
        model = registry.get_model(company)
        restored = model_from_artifacts(model_artifacts(model))
        assert restored.provenance == model.provenance
