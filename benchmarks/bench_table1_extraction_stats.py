"""Table 1 — extraction statistics for both policies.

Paper reports (TikTok / Meta): 419 / 1,323 nodes, 974 / 3,801 edges,
217 / 700 entities, 122 / 382 data types.  Absolute numbers differ on the
synthetic corpora; the asserted shape is the paper's: Meta ≈ 3x TikTok,
edges ≥ 2x nodes, and both policies process end to end.
"""

from conftest import print_table

from repro.corpus import metabook_policy, tiktak_policy

PAPER_TABLE1 = {
    "TikTok": {"total_nodes": 419, "total_edges": 974, "entities": 217, "data_types": 122},
    "Meta": {"total_nodes": 1323, "total_edges": 3801, "entities": 700, "data_types": 382},
}


def test_table1_extraction_statistics(benchmark, pipeline, tiktak_model, metabook_model):
    tk = tiktak_model.statistics.as_dict()
    mb = metabook_model.statistics.as_dict()

    print_table(
        "Table 1: Extraction Statistics (paper / measured)",
        ["Metric", "TikTok(paper)", "TikTak(ours)", "Meta(paper)", "MetaBook(ours)"],
        [
            [
                metric,
                PAPER_TABLE1["TikTok"][metric],
                tk[metric],
                PAPER_TABLE1["Meta"][metric],
                mb[metric],
            ]
            for metric in ("total_nodes", "total_edges", "entities", "data_types")
        ],
    )

    # Shape assertions from the paper's table.
    assert mb["total_nodes"] > 1.5 * tk["total_nodes"]
    assert mb["total_edges"] > 2.0 * tk["total_edges"]
    assert mb["data_types"] > tk["data_types"]
    assert tk["total_edges"] > tk["total_nodes"]
    assert mb["total_edges"] > mb["total_nodes"]

    # Benchmark the full Phase 1+2 pipeline on the TikTok-scale policy with
    # a cold LLM cache (a fresh pipeline per round).
    from repro import PolicyPipeline

    text = tiktak_policy().text
    benchmark.pedantic(
        lambda: PolicyPipeline().process(text), rounds=2, iterations=1
    )
