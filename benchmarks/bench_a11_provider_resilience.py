"""A11 — provider-boundary resilience: rescue rates and cassette speed.

Runs the standing chaos suite of distinct policy questions through the
full resilience stack (``CachedLLM(CircuitBreaker(RetryingLLM(
ProfiledLLM(SimulatedLLM))))``) under each named stress profile and
records the rescue economics: how many faults the profile injected, how
many retries cleared them, how many honored the server's Retry-After
hint, and how much latency the profile simulated versus the wall clock
actually spent (the injectable sleep seam means seconds of brownout cost
microseconds of real time).  Every profile must end with a 100% rescue
rate — zero errors, zero giveups — because the shipped profiles keep
``faults_per_prompt`` within the default retry budget.

The second half measures the cassette path: record throughput (fsync'd
appends through ``store/atomic``) and replay throughput (pure dict
lookups), the gap being the price of durability at record time that
replay never pays again.
"""

from __future__ import annotations

import time

from conftest import print_table, write_bench_json

from repro import PolicyPipeline
from repro.llm.client import CachedLLM, UsageStats
from repro.llm.simulated import SimulatedLLM
from repro.providers import PROFILES, ProfiledLLM, RecordingLLM, ReplayLLM
from repro.resilience import CircuitBreaker, RetryingLLM, RetryPolicy

POLICY = """\
Acme Privacy Policy. Last updated January 2025. Welcome to Acme ("Acme", \
"we", "us", or "our"). This Privacy Policy explains how Acme handles your \
information.

1. Information You Provide
We collect information that you provide directly. We collect your name \
and email address. When you create an account, you may provide your \
name, email address, and phone number. If you contact customer support, \
we collect your message content. Account and profile information, such \
as username, password, and profile image.

2. How We Share Your Information
We share your usage information with analytics providers for legitimate \
business purposes. We disclose personal information to law enforcement \
when required by law. We do not sell your contact information to third \
parties. We share your location information with advertisers with your \
consent.

3. Data Retention
We retain your email address as long as your account remains active. We \
delete your message content after 90 days.
"""

QUESTIONS = [
    "Acme collects the email address.",
    "Acme collects the phone number.",
    "Does Acme collect my name?",
    "Acme shares the usage information with analytics providers.",
    "Acme shares the location information with advertisers.",
    "Acme sells the contact information.",
    "Law enforcement receives the personal information.",
    "Acme collects the message content.",
]
SUITE = QUESTIONS * 3
WORKERS = 4
CASSETTE_PROMPTS = 200


def _profiled_pipeline(profile):
    simulated: list[float] = []
    stats = UsageStats()
    llm = CachedLLM(
        CircuitBreaker(
            RetryingLLM(
                ProfiledLLM(
                    SimulatedLLM(), profile, sleep=simulated.append, stats=stats
                ),
                RetryPolicy(),
                stats=stats,
                sleep=simulated.append,
            ),
            stats=stats,
        )
    )
    return PolicyPipeline(llm=llm), stats, simulated


def test_a11_profile_rescue_rates():
    model = PolicyPipeline().process(POLICY)

    rows = []
    profile_payload = {}
    for name, profile in sorted(PROFILES.items()):
        pipeline, stats, simulated = _profiled_pipeline(profile)
        start = time.perf_counter()
        batch = pipeline.query_batch(model, SUITE, max_workers=WORKERS)
        wall_seconds = time.perf_counter() - start

        assert batch.errors == []
        assert stats.retry_giveups == 0
        # Designation is content-keyed: a low fault_rate may spare a small
        # distinct-prompt suite entirely, but the aggressive profiles must
        # land some faults for the rescue numbers to mean anything.
        if profile.fault_rate >= 0.3:
            assert stats.faults_injected > 0
        # Every injected fault was cleared by exactly one retry.
        assert stats.retries == stats.faults_injected
        rescue_rate = 1.0

        simulated_seconds = sum(simulated)
        rows.append(
            [
                name,
                f"{stats.faults_injected}",
                f"{stats.retries}",
                f"{stats.retry_after_honored}",
                f"{rescue_rate:.0%}",
                f"{simulated_seconds:.2f}",
                f"{wall_seconds:.2f}",
            ]
        )
        profile_payload[name] = {
            "queries": len(SUITE),
            "workers": WORKERS,
            "faults_injected": stats.faults_injected,
            "retries": stats.retries,
            "retry_after_honored": stats.retry_after_honored,
            "giveups": stats.retry_giveups,
            "rescue_rate": rescue_rate,
            "simulated_latency_seconds": round(simulated_seconds, 6),
            "wall_seconds": round(wall_seconds, 6),
        }

    print_table(
        f"A11: profile rescue rates ({len(SUITE)} queries, "
        f"{WORKERS} workers)",
        [
            "profile",
            "faults",
            "retries",
            "hints honored",
            "rescued",
            "sim latency (s)",
            "wall (s)",
        ],
        rows,
    )
    write_bench_json(
        "a11_provider_resilience", profile_payload, section="profiles"
    )


class EchoLLM:
    """Minimal string-in/string-out backend for raw cassette throughput."""

    def complete(self, prompt: str) -> str:
        return f"completion::{prompt}"


def test_a11_cassette_throughput(tmp_path):
    tape = tmp_path / "bench.jsonl"
    prompts = [f"benchmark prompt {i}" for i in range(CASSETTE_PROMPTS)]

    with RecordingLLM(EchoLLM(), tape) as recorder:
        start = time.perf_counter()
        for prompt in prompts:
            recorder.complete(prompt)
        record_seconds = time.perf_counter() - start
    assert recorder.stats.cassette_records == CASSETTE_PROMPTS

    replay = ReplayLLM(tape, strict=True)
    start = time.perf_counter()
    for prompt in prompts:
        replay.complete(prompt)
    replay_seconds = time.perf_counter() - start
    assert replay.stats.cassette_misses == 0

    record_rate = CASSETTE_PROMPTS / record_seconds if record_seconds else 0.0
    replay_rate = CASSETTE_PROMPTS / replay_seconds if replay_seconds else 0.0
    print_table(
        f"A11: cassette throughput ({CASSETTE_PROMPTS} prompts)",
        ["mode", "seconds", "prompts/s"],
        [
            ["record (fsync'd)", f"{record_seconds:.3f}", f"{record_rate:,.0f}"],
            ["replay (in-memory)", f"{replay_seconds:.3f}", f"{replay_rate:,.0f}"],
        ],
    )
    write_bench_json(
        "a11_provider_resilience",
        {
            "prompts": CASSETTE_PROMPTS,
            "record_seconds": round(record_seconds, 6),
            "replay_seconds": round(replay_seconds, 6),
            "record_per_second": round(record_rate, 1),
            "replay_per_second": round(replay_rate, 1),
        },
        section="cassette",
    )
