"""Shared fixtures for the benchmark suite.

Each bench prints the paper-style table it regenerates (run with ``-s`` to
see them) and asserts the *shape* claims — who wins, by roughly what
factor, where the solver gives out — so a green bench run doubles as a
reproduction check.
"""

from __future__ import annotations

import pytest

from repro import PolicyPipeline
from repro.corpus import metabook_policy, tiktak_policy


@pytest.fixture(scope="session")
def pipeline() -> PolicyPipeline:
    return PolicyPipeline()


@pytest.fixture(scope="session")
def tiktak_model(pipeline):
    return pipeline.process(tiktak_policy().text)


@pytest.fixture(scope="session")
def metabook_model(pipeline):
    return pipeline.process(metabook_policy().text)


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Render an aligned text table to stdout."""
    widths = [len(h) for h in headers]
    rendered = [[str(c) for c in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    print(f"\n== {title}")
    print("  " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rendered:
        print("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))
