"""Shared fixtures for the benchmark suite.

Each bench prints the paper-style table it regenerates (run with ``-s`` to
see them) and asserts the *shape* claims — who wins, by roughly what
factor, where the solver gives out — so a green bench run doubles as a
reproduction check.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import PolicyPipeline
from repro.corpus import metabook_policy, tiktak_policy

BENCH_DIR = Path(__file__).resolve().parent


@pytest.fixture(scope="session")
def pipeline() -> PolicyPipeline:
    return PolicyPipeline()


@pytest.fixture(scope="session")
def tiktak_model(pipeline):
    return pipeline.process(tiktak_policy().text)


@pytest.fixture(scope="session")
def metabook_model(pipeline):
    return pipeline.process(metabook_policy().text)


def write_bench_json(
    name: str, payload: dict, *, section: str | None = None
) -> Path:
    """Persist a bench's headline numbers as ``BENCH_<name>.json``.

    The machine-readable twin of the printed table: labels and measured
    numbers only — no timestamps, hostnames, or environment echo — so
    committed artifacts diff as pure performance movement.  A bench file
    with several tests passes ``section`` so each test owns one top-level
    key of the shared artifact instead of overwriting its siblings.
    """
    path = BENCH_DIR / f"BENCH_{name}.json"
    if section is None:
        data = payload
    else:
        data = {}
        if path.exists():
            try:
                data = json.loads(path.read_text("utf-8"))
            except (OSError, json.JSONDecodeError):
                data = {}
        data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", "utf-8")
    return path


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Render an aligned text table to stdout."""
    widths = [len(h) for h in headers]
    rendered = [[str(c) for c in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    print(f"\n== {title}")
    print("  " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rendered:
        print("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))
