"""R3 — the headline negative result: SMT solving hits its limits.

"While solver timeouts occur when formulas contain hundreds of clauses
even for single queries, the extraction itself scales linearly" (§4.4);
"the resulting formal representations overwhelm current SMT solvers" (§5).

Sweeps the encoded-subgraph size for a single query from tens of edges to
the full policy graph and reports assertions, ground instances, outcome,
and wall time.  Asserts the paper's shape: small encodings solve, the
full-policy encoding exhausts the solver budget and returns UNKNOWN
(our first-class "timeout").
"""

import time

from conftest import print_table

from repro import SolverBudget
from repro.core.encode import encode_query
from repro.core.subgraph import Subgraph, extract_subgraph
from repro.core.verify import Verdict, verify_encoded
from repro.llm.tasks import ExtractedParameters

#: Budget matching the paper's single-query verification setting: generous
#: for query-sized problems, finite for policy-sized ones.
BUDGET = SolverBudget(
    max_conflicts=20_000,
    max_propagations=2_000_000,
    max_ground_instances=60_000,
    timeout_seconds=10.0,
)

QUERY = ExtractedParameters(
    sender="metabook",
    receiver=None,
    subject="user",
    data_type="email",
    action="collect",
    condition=None,
    permission=True,
)


def _full_graph_subgraph(model) -> Subgraph:
    """A subgraph containing every edge and hierarchy link of the policy."""
    sub = Subgraph()
    sub.edges = model.graph.edges()
    sub.data_terms = {e.target for e in sub.edges}
    sub.entity_terms = {e.source for e in sub.edges}
    taxonomy = model.graph.data_taxonomy
    if taxonomy:
        sub.hierarchy_edges = [
            (parent, child)
            for parent, child in taxonomy.as_edges()
            if parent != taxonomy.root
        ]
    return sub


def test_r3_solver_limits(benchmark, metabook_model):
    rows = []
    outcomes = {}
    sweeps: list[tuple[str, Subgraph]] = []
    for max_edges in (10, 50, 150, 400):
        sub = extract_subgraph(
            metabook_model.graph, ["email"], [], max_edges=max_edges
        )
        sweeps.append((f"query subgraph <= {max_edges}", sub))
    sweeps.append(("FULL POLICY GRAPH", _full_graph_subgraph(metabook_model)))

    for label, sub in sweeps:
        encoded = encode_query(sub, QUERY)
        start = time.perf_counter()
        result = verify_encoded(
            encoded, budget=BUDGET, check_conditional=False
        )
        elapsed = time.perf_counter() - start
        outcomes[label] = result
        rows.append(
            [
                label,
                sub.num_edges,
                encoded.num_policy_formulas,
                result.solver_result.statistics.ground_instances,
                str(result.verdict),
                result.solver_result.reason[:40],
                f"{elapsed:.2f}",
            ]
        )

    print_table(
        "R3: solver outcome vs encoded-subgraph size (paper: timeouts on full policies)",
        ["encoding", "edges", "assertions", "ground insts", "verdict", "reason", "seconds"],
        rows,
    )

    # Shape: query-sized encodings are decided; the full policy is not.
    for label, result in outcomes.items():
        if label.startswith("query subgraph <= 10") or label.startswith(
            "query subgraph <= 50"
        ):
            assert result.verdict in (Verdict.VALID, Verdict.INVALID), label
    full = outcomes["FULL POLICY GRAPH"]
    assert full.verdict is Verdict.UNKNOWN
    assert full.solver_result.reason, "UNKNOWN must carry a reason"

    # Benchmark the well-behaved query-sized case.
    small = extract_subgraph(metabook_model.graph, ["email"], [], max_edges=50)
    encoded_small = encode_query(small, QUERY)
    benchmark.pedantic(
        verify_encoded,
        args=(encoded_small,),
        kwargs={"budget": BUDGET, "check_conditional": False},
        rounds=3,
        iterations=1,
    )
