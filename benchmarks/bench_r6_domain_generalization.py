"""R6 — §5: "The system generalizes across domains without modification."

"The LLM extracts parameters from any terminology, while CoL builds
hierarchies based on semantic relationships rather than predefined
categories. ... can adapt to healthcare, media, financial, or educational
terminology through the same iterative process."

Runs the unmodified pipeline on a healthcare-domain policy (MediTrack) and
checks that extraction, taxonomy induction, and query verification all
work on terminology absent from the media-platform corpora: diagnoses,
medications, wearable telemetry, telehealth recordings.
"""

from conftest import print_table

from repro import PolicyPipeline, Verdict
from repro.corpus import MEDITRACK_SHOWCASE, meditrack_policy

HEALTH_TERMS = (
    "medication",
    "lab result",
    "heart rate",
    "sleep pattern",
    "immunization record",
)


def test_r6_domain_generalization(benchmark, pipeline):
    policy = meditrack_policy()
    model = pipeline.process(policy.text)
    stats = model.statistics.as_dict()

    rows = [[k, v] for k, v in stats.items()]
    print_table(
        f"R6: unmodified pipeline on a healthcare policy ({policy.word_count:,} words)",
        ["metric", "value"],
        rows,
    )

    assert model.company == "MediTrack"
    assert stats["total_edges"] > 400
    assert stats["data_types"] > 40

    # The dynamic taxonomy organizes the novel terminology (Challenge 2).
    taxonomy = model.data_taxonomy
    organized = [t for t in HEALTH_TERMS if t in taxonomy]
    placements = [
        [term, taxonomy.parent(term) or "-"] for term in HEALTH_TERMS if term in taxonomy
    ]
    print_table("R6: taxonomy placement of domain-novel terms", ["term", "parent"], placements)
    assert len(organized) >= 4
    under_health = [
        t for t in organized if "health data" in ([taxonomy.parent(t)] + taxonomy.ancestors(t))
    ]
    assert len(under_health) >= 3

    # The showcase statements decompose exactly like the media-domain ones.
    for statement, min_edges in MEDITRACK_SHOWCASE:
        practices = pipeline.runner.extract_parameters(statement, "MediTrack")
        assert len(practices) >= min_edges

    # End-to-end query on domain terminology.
    outcome = pipeline.query(model, "The user provides medications to MediTrack.")
    print(f"  query verdict: {outcome.verdict}")
    assert outcome.verdict in (Verdict.VALID, Verdict.INVALID)
    assert outcome.subgraph.num_edges > 0

    text = policy.text
    benchmark.pedantic(
        lambda: PolicyPipeline().process(text), rounds=2, iterations=1
    )
