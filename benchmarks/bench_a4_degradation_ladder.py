"""A4 — the degradation ladder rescues full-policy UNKNOWNs.

R3 reproduces the paper's negative result: full-policy encodings
overwhelm the solver and come back UNKNOWN.  This bench measures the
resilience layer's answer — the :class:`BudgetLadder` — on exactly those
queries: verify against the FULL policy graph at the *default*
:class:`SolverBudget`, watch it fail, then run the ladder and report the
rescue rate and what each rung cost.

Two regimes are exercised:

* **default budget** — the full encoding grounds completely but the policy
  branches contradict each other, so the verdict is demoted to UNKNOWN;
  escalation cannot help (not budget-limited) and the ladder goes straight
  to per-data-branch decomposition.
* **starved budget** (the R3 setting) — grounding itself overruns, the
  ladder escalates first, re-hits the contradiction, then decomposes.
"""

import time

from conftest import print_table, write_bench_json

from repro import SolverBudget
from repro.core.encode import encode_query
from repro.core.subgraph import Subgraph
from repro.core.verify import Verdict, verify_encoded
from repro.llm.tasks import ExtractedParameters
from repro.resilience import BudgetLadder, execute_ladder, is_budget_limited

#: The R3 budget: generous for query-sized problems, finite for
#: policy-sized ones — grounding the full graph overruns it.
STARVED = SolverBudget(
    max_conflicts=20_000,
    max_propagations=2_000_000,
    max_ground_instances=60_000,
    timeout_seconds=10.0,
)

QUERY_TERMS = ("email", "phone number")


def _query(data_type: str) -> ExtractedParameters:
    return ExtractedParameters(
        sender="tiktak",
        receiver=None,
        subject="user",
        data_type=data_type,
        action="collect",
        condition=None,
        permission=True,
    )


def _full_graph_subgraph(model) -> Subgraph:
    """A subgraph containing every edge and hierarchy link of the policy."""
    sub = Subgraph()
    sub.edges = model.graph.edges()
    sub.data_terms = {e.target for e in sub.edges}
    sub.entity_terms = {e.source for e in sub.edges}
    taxonomy = model.graph.data_taxonomy
    if taxonomy:
        sub.hierarchy_edges = [
            (parent, child)
            for parent, child in taxonomy.as_edges()
            if parent != taxonomy.root
        ]
    return sub


def _run_ladder(sub, params, budget, ladder, rows, label):
    encoded = encode_query(sub, params)
    start = time.perf_counter()
    initial = verify_encoded(encoded, budget=budget, check_conditional=False)
    base_seconds = time.perf_counter() - start
    rows.append(
        [
            label,
            "(base)",
            str(initial.verdict),
            initial.solver_result.reason[:44],
            f"{base_seconds:.2f}",
            initial.solver_result.statistics.ground_instances,
        ]
    )
    if initial.verdict is not Verdict.UNKNOWN:
        return initial, None
    final, report = execute_ladder(
        sub,
        params,
        initial,
        ladder=ladder,
        base_budget=budget,
        encoded=encoded,
        check_conditional=False,
    )
    for step in report.steps:
        rows.append(
            [
                label,
                f"{step.rung} {step.detail}"[:40],
                step.verdict + ("" if step.sound else " [partial]"),
                step.reason[:44],
                f"{step.seconds:.2f}",
                step.ground_instances,
            ]
        )
    return final, report


def test_a4_degradation_ladder(tiktak_model):
    sub = _full_graph_subgraph(tiktak_model)
    rows: list[list[object]] = []

    # Regime 1: default budget, one ladder run per query term.
    unknown = 0
    rescued = 0
    reports = {}
    for term in QUERY_TERMS:
        final, report = _run_ladder(
            sub, _query(term), SolverBudget(), BudgetLadder(), rows, term
        )
        if report is not None:
            unknown += 1
            reports[term] = report
            if report.rescued:
                rescued += 1

    # Regime 2: the starved R3 budget for one query, to exercise the
    # escalation rung before decomposition.
    starved_final, starved_report = _run_ladder(
        sub,
        _query(QUERY_TERMS[0]),
        STARVED,
        BudgetLadder(multipliers=(2.0,)),
        rows,
        f"{QUERY_TERMS[0]} @R3 budget",
    )

    print_table(
        "A4: degradation ladder on full-policy UNKNOWNs "
        f"(default-budget rescue rate {rescued}/{unknown})",
        ["query", "rung", "verdict", "reason", "seconds", "ground insts"],
        rows,
    )

    # Shape: every full-policy query is UNKNOWN at the default budget, and
    # the ladder rescues at least one of them (the acceptance criterion).
    assert unknown == len(QUERY_TERMS)
    assert rescued >= 1
    email_report = reports[QUERY_TERMS[0]]
    assert email_report.rescued
    assert email_report.final_rung == "decompose"
    # The contradiction demotion is not budget-limited: no escalation runs.
    assert email_report.escalations == 0
    assert email_report.decompositions == 1

    # The starved regime escalates first, then decomposes to a decision.
    assert starved_report is not None
    assert starved_report.escalations >= 1
    assert starved_report.steps[0].rung == "escalate"
    assert starved_final.verdict is not Verdict.UNKNOWN
    assert starved_report.rescued

    # The base failure really was a budget failure in the starved regime.
    base_row = [r for r in rows if r[0].endswith("@R3 budget") and r[1] == "(base)"]
    assert base_row and "budget" in base_row[0][3] or "timeout" in base_row[0][3]

    write_bench_json(
        "a4_degradation_ladder",
        {
            "query_terms": len(QUERY_TERMS),
            "unknown_at_default_budget": unknown,
            "rescued": rescued,
            "email_escalations": email_report.escalations,
            "email_decompositions": email_report.decompositions,
            "starved_escalations": starved_report.escalations,
            "starved_rescued": starved_report.rescued,
        },
    )
