"""A9 — resident serving vs cold CLI invocations.

PR 7's reason to exist: every ``repro-policy query`` invocation pays a
fresh ``PolicyPipeline``, a shard load, and a cold Phase 3 run before it
can answer one question.  The daemon keeps all of that warm behind a
socket.  This bench prices the same single-company question both ways:

* **cold** — what one CLI invocation does per question: construct a
  pipeline, load the model from its shard, run the query, throw it away;
* **warm** — one :class:`PolicyServer` with the fleet pre-warmed, a
  keep-alive :class:`ServingClient`, measured per-request at the client
  (so the number includes HTTP framing, admission, and the epoch pin —
  the whole serving overhead, not just the query).

Asserts the warm served p50 beats the cold per-invocation p50 by
**>= 5x** (the acceptance bar; measured ~100x on the reference
container), that the server-side reservoir agrees the tail is bounded,
and writes the numbers to ``BENCH_a9_serving_latency.json``.
"""

import statistics
import time

from conftest import print_table, write_bench_json

from repro import PolicyPipeline, PolicyServer, ServerConfig, ServingClient
from repro.registry import MintSpec, PolicyRegistry

QUESTION = "The company shares the email address with advertisers."
FLEET = MintSpec(count=4, seed=47, target_words=(340,))
COLD_ROUNDS = 5  # cold invocations are seconds each; a handful suffices
WARM_REQUESTS = 200
MIN_SPEEDUP = 5.0


def _p50(samples: list[float]) -> float:
    return statistics.median(samples)


def test_a9_serving_latency(pipeline, tmp_path):
    registry = PolicyRegistry(tmp_path / "reg", pipeline=pipeline, max_warm=8)
    report = registry.mint(FLEET)
    companies = registry.companies()
    assert len(report.minted) == FLEET.count

    # Cold: the per-invocation cost of the CLI path, end to end.
    cold_samples = []
    for _ in range(COLD_ROUNDS):
        start = time.perf_counter()
        solo = PolicyPipeline()
        model = solo.load_model(
            registry.root / registry.entry(companies[0]).store_dir
        )
        outcome = solo.query(model, QUESTION)
        cold_samples.append(time.perf_counter() - start)
    cold_verdict = outcome.verdict.value

    # Warm: the resident daemon, measured from the client side.
    server = PolicyServer(
        ServerConfig(
            root=registry.root,
            port=0,
            max_pending=8,
            warm_on_start=-1,
            handle_signals=False,
        ),
        pipeline=PolicyPipeline(),
    )
    server.start()
    try:
        host, port = server.address
        client = ServingClient(host, port, timeout=30.0)
        try:
            warm_samples = []
            verdicts = set()
            for i in range(WARM_REQUESTS):
                company = companies[i % len(companies)]
                start = time.perf_counter()
                status, body = client.query(company, QUESTION)
                warm_samples.append(time.perf_counter() - start)
                assert status == 200
                verdicts.add((company, body["verdict"]))
            stats = client.stats()
        finally:
            client.close()
    finally:
        server.stop()

    # Same verdict either way: serving is a transport, not a different
    # engine.
    assert (companies[0], cold_verdict) in verdicts

    cold_p50 = _p50(cold_samples)
    warm_p50 = _p50(warm_samples)
    warm_sorted = sorted(warm_samples)
    warm_p95 = warm_sorted[int(0.95 * (len(warm_sorted) - 1))]
    warm_p99 = warm_sorted[int(0.99 * (len(warm_sorted) - 1))]
    speedup = cold_p50 / warm_p50

    # The server's own reservoir must agree with the client's view to
    # within the transport overhead: its p50 can only be faster.
    server_latency = stats["latency"]
    assert server_latency["count"] == WARM_REQUESTS
    assert server_latency["p50_seconds"] <= warm_p50 * 1.5

    print_table(
        f"A9: serving latency ({WARM_REQUESTS} warm requests over "
        f"{len(companies)} companies vs {COLD_ROUNDS} cold invocations)",
        ["mode", "p50", "p95", "p99", "speedup"],
        [
            [
                "cold: CLI per-invocation",
                f"{cold_p50 * 1e3:.1f} ms",
                "-",
                "-",
                "1.0x",
            ],
            [
                "warm: served keep-alive",
                f"{warm_p50 * 1e3:.2f} ms",
                f"{warm_p95 * 1e3:.2f} ms",
                f"{warm_p99 * 1e3:.2f} ms",
                f"{speedup:.0f}x",
            ],
            [
                "server-side reservoir",
                f"{server_latency['p50_seconds'] * 1e3:.2f} ms",
                f"{server_latency['p95_seconds'] * 1e3:.2f} ms",
                f"{server_latency['p99_seconds'] * 1e3:.2f} ms",
                "-",
            ],
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"warm served p50 ({warm_p50 * 1e3:.2f} ms) only {speedup:.1f}x "
        f"faster than a cold CLI invocation ({cold_p50 * 1e3:.1f} ms); "
        f"the >= {MIN_SPEEDUP:.0f}x bar is the daemon's reason to exist"
    )

    write_bench_json(
        "a9_serving_latency",
        {
            "companies": len(companies),
            "cold_rounds": COLD_ROUNDS,
            "warm_requests": WARM_REQUESTS,
            "cold_p50_seconds": round(cold_p50, 6),
            "warm_p50_seconds": round(warm_p50, 6),
            "warm_p95_seconds": round(warm_p95, 6),
            "warm_p99_seconds": round(warm_p99, 6),
            "server_p50_seconds": server_latency["p50_seconds"],
            "server_p95_seconds": server_latency["p95_seconds"],
            "server_p99_seconds": server_latency["p99_seconds"],
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SPEEDUP,
        },
    )
