"""A1 — ablation: Chain-of-Layer hierarchy vs hierarchy-blind matching.

The design claim (§2 Phase 3): "if a policy allows sharing 'contact
information' and we know 'email address' is a subtype, the hierarchy
enables proper inference."  This bench runs subtype queries with the
hierarchy on and off and reports how many resolve (VALID or conditionally
valid) in each mode — the hierarchy must strictly widen query coverage.
"""

from conftest import print_table, write_bench_json

from repro import PipelineConfig, PolicyPipeline, Verdict
from repro.corpus import tiktak_policy

#: Queries phrased against *general* categories whose evidence in the
#: policy lives on more specific or related nodes (or vice versa).
QUERIES = (
    "TikTak collects the email address.",
    "TikTak collects the phone number.",
    "TikTak shares the location information with advertisers.",
    "TikTak collects precise location.",
    "The user provides the profile image.",
)


def _proven(outcome) -> bool:
    """Fully proven: the query follows from the policy unconditionally."""
    return outcome.verdict is Verdict.VALID


def test_a1_hierarchy_ablation(benchmark):
    text = tiktak_policy().text
    with_h = PolicyPipeline(config=PipelineConfig(include_hierarchy_axioms=True))
    without_h = PolicyPipeline(config=PipelineConfig(include_hierarchy_axioms=False))
    model_with = with_h.process(text)
    model_without = without_h.process(text)

    rows = []
    proven_with = 0
    proven_without = 0
    for query in QUERIES:
        outcome_with = with_h.query(model_with, query)
        outcome_without = without_h.query(model_without, query)
        ok_with = _proven(outcome_with)
        ok_without = _proven(outcome_without)
        proven_with += ok_with
        proven_without += ok_without
        rows.append(
            [
                query[:48],
                str(outcome_with.verdict),
                ok_with,
                str(outcome_without.verdict),
                ok_without,
                outcome_with.subgraph.num_edges,
                outcome_without.subgraph.num_edges,
            ]
        )

    print_table(
        "A1: hierarchy-aware vs hierarchy-blind query proof",
        ["query", "verdict(H)", "proven(H)", "verdict(noH)", "proven(noH)", "edges(H)", "edges(noH)"],
        rows,
    )
    print(
        f"  proven with hierarchy: {proven_with}/{len(QUERIES)}, "
        f"without: {proven_without}/{len(QUERIES)}"
    )

    # The paper's claim: the hierarchy strictly widens what the solver can
    # prove (subtype queries resolve through inheritance axioms), and never
    # loses coverage.
    assert proven_with > proven_without
    edges_with = sum(r[5] for r in rows)
    edges_without = sum(r[6] for r in rows)
    assert edges_with > edges_without

    write_bench_json(
        "a1_hierarchy_ablation",
        {
            "queries": len(QUERIES),
            "proven_with_hierarchy": proven_with,
            "proven_without_hierarchy": proven_without,
            "subgraph_edges_with_hierarchy": edges_with,
            "subgraph_edges_without_hierarchy": edges_without,
        },
    )

    benchmark(with_h.query, model_with, QUERIES[0])
