"""A2 — ablation: the paper's future-work solver optimisations.

§4.4 names three escape routes from the verification bottleneck:
incremental solving (reusing solver state across queries),
``check-sat-assuming`` for exploring conditions without re-solving, and
FOL simplification/pruning before encoding.  All three are implemented;
this bench measures each against its naive baseline.
"""

import time

from conftest import print_table, write_bench_json

from repro import SolverBudget
from repro.core.encode import encode_query
from repro.core.subgraph import extract_subgraph
from repro.fol.builder import negate
from repro.fol.formula import PredicateSymbol
from repro.fol.simplify import prune_irrelevant, simplify
from repro.fol.visitor import collect_predicates
from repro.llm.tasks import ExtractedParameters
from repro.solver import Solver

BUDGET = SolverBudget(timeout_seconds=30.0, max_ground_instances=500_000)

QUERY = ExtractedParameters(
    sender="metabook",
    receiver=None,
    subject="user",
    data_type="email",
    action="collect",
    condition=None,
    permission=True,
)


def _encoded(metabook_model, max_edges=250):
    sub = extract_subgraph(metabook_model.graph, ["email"], [], max_edges=max_edges)
    return encode_query(sub, QUERY)


def test_a2_check_sat_assuming_vs_resolve(benchmark, metabook_model):
    """Exploring k conditions: one incremental solver vs k fresh solves."""
    encoded = _encoded(metabook_model)
    conditions = sorted(encoded.uninterpreted)[:8]
    rows = []

    # Naive: a fresh solver (and full re-grounding) per condition.
    start = time.perf_counter()
    naive_results = []
    for name in conditions:
        solver = Solver(budget=BUDGET)
        for formula in encoded.policy_formulas:
            solver.assert_formula(formula)
        solver.assert_formula(negate(encoded.query_formula))
        solver.assert_formula(PredicateSymbol(name, (), uninterpreted=True)())
        naive_results.append(solver.check_sat().status.value)
    naive_seconds = time.perf_counter() - start

    # Incremental: one solver, check-sat-assuming per condition.
    start = time.perf_counter()
    incremental = Solver(budget=BUDGET)
    for formula in encoded.policy_formulas:
        incremental.assert_formula(formula)
    incremental.assert_formula(negate(encoded.query_formula))
    incr_results = []
    for name in conditions:
        assumption = PredicateSymbol(name, (), uninterpreted=True)()
        incr_results.append(incremental.check_sat_assuming([assumption]).status.value)
    incr_seconds = time.perf_counter() - start

    rows.append(
        [
            f"{len(conditions)} condition probes",
            f"{naive_seconds:.3f}",
            f"{incr_seconds:.3f}",
            f"{naive_seconds / max(incr_seconds, 1e-9):.1f}x",
        ]
    )
    print_table(
        "A2a: check-sat-assuming vs fresh re-solving",
        ["workload", "fresh solves (s)", "incremental (s)", "speedup"],
        rows,
    )

    assert incr_results == naive_results  # identical verdicts
    assert incr_seconds < naive_seconds

    write_bench_json(
        "a2_solver_optimizations",
        {
            "condition_probes": len(conditions),
            "fresh_solve_seconds": round(naive_seconds, 6),
            "incremental_seconds": round(incr_seconds, 6),
            "speedup": round(naive_seconds / max(incr_seconds, 1e-9), 2),
        },
        section="check_sat_assuming",
    )

    benchmark(incremental.check_sat_assuming, [
        PredicateSymbol(conditions[0], (), uninterpreted=True)()
    ])


def test_a2_simplification_and_pruning(benchmark, metabook_model):
    """Pruning irrelevant conjuncts shrinks the problem the solver sees."""
    encoded = _encoded(metabook_model, max_edges=400)
    from repro.fol.builder import conjoin

    whole_policy = conjoin(list(encoded.policy_formulas))
    relevant = {s.name for s in collect_predicates(encoded.query_formula)}

    pruned = prune_irrelevant(whole_policy, relevant)

    def clause_count(formula) -> int:
        from repro.fol.formula import And

        simplified = simplify(formula)
        if isinstance(simplified, And):
            return len(simplified.operands)
        return 1

    full_size = clause_count(whole_policy)
    pruned_size = clause_count(pruned)

    print_table(
        "A2b: relevance pruning before encoding",
        ["variant", "top-level conjuncts"],
        [["full encoding", full_size], ["pruned to query predicates", pruned_size]],
    )
    assert pruned_size < full_size

    write_bench_json(
        "a2_solver_optimizations",
        {
            "full_conjuncts": full_size,
            "pruned_conjuncts": pruned_size,
            "reduction": round(1 - pruned_size / full_size, 4),
        },
        section="relevance_pruning",
    )

    # Soundness of the prune for this query: the verdict is unchanged.
    full_solver = Solver(budget=BUDGET)
    full_solver.assert_formula(whole_policy)
    full_solver.assert_formula(negate(encoded.query_formula))
    pruned_solver = Solver(budget=BUDGET)
    pruned_solver.assert_formula(pruned)
    # Keep the query's constants in the pruned universe.
    for const in list(encoded.entity_constants.values()) + list(
        encoded.data_constants.values()
    ):
        pruned_solver.declare_constant(const)
    pruned_solver.assert_formula(negate(encoded.query_formula))
    assert (
        full_solver.check_sat().status == pruned_solver.check_sat().status
    )

    benchmark(prune_irrelevant, whole_policy, relevant)


def test_a2_cnf_preprocessing(benchmark, metabook_model):
    """Presolving (units, subsumption, pure literals) shrinks the CNF."""
    import time as _time

    from repro.solver.preprocess import preprocess
    from repro.solver.cnf import tseitin
    from repro.solver.grounding import Universe, ground
    from repro.solver.literals import AtomPool
    from repro.fol.visitor import collect_constants

    # A non-entailed query keeps the clause set satisfiable; an entailed one
    # would be refuted outright by unit propagation (also a fine outcome,
    # but then there is no reduction to measure).
    sub = extract_subgraph(metabook_model.graph, ["email"], [], max_edges=400)
    query = ExtractedParameters(
        sender="metabook",
        receiver=None,
        subject="user",
        data_type="email",
        action="sell",
        condition=None,
        permission=True,
    )
    encoded = encode_query(sub, query)
    formulas = encoded.policy_formulas + [negate(encoded.query_formula)]
    universe = Universe()
    for formula in formulas:
        universe.declare_all(collect_constants(formula))
    pool = AtomPool()
    clauses = []
    for formula in formulas:
        clauses.extend(tseitin(ground(formula, universe), pool))

    start = _time.perf_counter()
    result = preprocess(
        clauses,
        pure_literals=True,
        protect=frozenset(pool.named_atoms().values()),
    )
    seconds = _time.perf_counter() - start

    print_table(
        "A2c: CNF presolving on a policy encoding",
        ["metric", "value"],
        [
            ["input clauses", len(clauses)],
            ["output clauses", len(result.clauses)],
            ["units fixed", result.stats.units_fixed],
            ["subsumed removed", result.stats.subsumed_removed],
            ["pure eliminated", result.stats.pure_eliminated],
            ["reduction", f"{1 - len(result.clauses) / len(clauses):.1%}"],
            ["presolve seconds", f"{seconds:.3f}"],
        ],
    )
    assert len(result.clauses) < 0.8 * len(clauses)

    write_bench_json(
        "a2_solver_optimizations",
        {
            "input_clauses": len(clauses),
            "output_clauses": len(result.clauses),
            "units_fixed": result.stats.units_fixed,
            "subsumed_removed": result.stats.subsumed_removed,
            "pure_eliminated": result.stats.pure_eliminated,
            "reduction": round(1 - len(result.clauses) / len(clauses), 4),
            "presolve_seconds": round(seconds, 6),
        },
        section="cnf_preprocessing",
    )

    # End-to-end: the preprocessing-enabled solver agrees with the plain one.
    plain = Solver(budget=BUDGET)
    pre = Solver(budget=BUDGET, enable_preprocessing=True)
    for solver in (plain, pre):
        for formula in formulas:
            solver.assert_formula(formula)
    assert plain.check_sat().status == pre.check_sat().status

    benchmark(
        preprocess,
        clauses,
        pure_literals=True,
        protect=frozenset(pool.named_atoms().values()),
    )
