"""A3 — the concurrent batch query engine with per-model memoization.

The ROADMAP's scaling direction: realistic workloads (fleet audits, legal
compliance suites) ask dozens of queries against one ``PolicyModel``.
``query_batch`` fans the suite out over a thread pool and shares repeated
work through the model's translation/subgraph/verification caches.

Measures a repeated-term suite (the audit pattern: the same handful of
compliance questions asked across report sections) sequentially with
memoization disabled — the pre-batch behaviour — against ``query_batch``
with 8 workers, and asserts:

* verdicts are identical query-for-query (the engine is a pure
  performance optimization), and
* the memoized batch is at least 2x faster on the repeated-term suite,
  with the cache hit/miss counts that explain why visible in
  ``PipelineMetrics``.
"""

import time

from conftest import print_table, write_bench_json

from repro import PipelineConfig, PolicyPipeline

DISTINCT_QUERIES = [
    "The user provides email to TikTak.",
    "The user provides phone number to TikTak.",
    "TikTak collects email address.",
    "TikTak shares biometric identifiers with data brokers.",
    "TikTak collects the location information.",
]
REPEATS = 8  # 5 distinct x 8 = 40 queries, the repeated-term audit suite
BATCH_WORKERS = 8


def _sequential_baseline(model, questions):
    """Pre-batch behaviour: one-at-a-time queries, no Phase 3 memoization."""
    pipeline = PolicyPipeline(config=PipelineConfig(enable_query_caches=False))
    start = time.perf_counter()
    outcomes = [pipeline.query(model, q) for q in questions]
    return outcomes, time.perf_counter() - start


def test_a3_batch_queries(pipeline, tiktak_model, benchmark):
    suite = DISTINCT_QUERIES * REPEATS
    assert len(suite) >= 20

    sequential, seq_seconds = _sequential_baseline(tiktak_model, suite)

    tiktak_model.caches.clear()
    start = time.perf_counter()
    batch = pipeline.query_batch(tiktak_model, suite, max_workers=BATCH_WORKERS)
    batch_seconds = time.perf_counter() - start

    # A pure performance optimization: verdict-identical, query for query.
    assert batch.verdicts == [o.verdict for o in sequential]
    assert [o.subgraph.num_edges for o in batch.outcomes] == [
        o.subgraph.num_edges for o in sequential
    ]

    metrics = batch.metrics
    speedup = seq_seconds / batch_seconds if batch_seconds > 0 else float("inf")
    print_table(
        f"A3: batch query engine ({len(suite)} queries, "
        f"{len(DISTINCT_QUERIES)} distinct, {BATCH_WORKERS} workers)",
        ["mode", "seconds", "speedup", "verif hits/misses", "transl hits/misses"],
        [
            ["sequential, no caches", f"{seq_seconds:.2f}", "1.0x", "-", "-"],
            [
                f"query_batch({BATCH_WORKERS})",
                f"{batch_seconds:.2f}",
                f"{speedup:.1f}x",
                f"{metrics.verification_hits}/{metrics.verification_misses}",
                f"{metrics.translation_hits}/{metrics.translation_misses}",
            ],
        ],
    )

    # The memoization must carry the repeated-term suite: every repeat of a
    # distinct problem is a cache hit, and the whole batch runs >= 2x
    # faster than the one-at-a-time, memoization-free baseline.
    assert metrics.verification_hits >= len(suite) - 2 * len(DISTINCT_QUERIES)
    assert metrics.verification_misses >= len(DISTINCT_QUERIES)
    assert metrics.cache_hits > 0 and metrics.cache_misses > 0
    assert speedup >= 2.0, (
        f"expected >= 2x speedup on the repeated-term suite, got {speedup:.2f}x "
        f"({seq_seconds:.2f}s sequential vs {batch_seconds:.2f}s batched)"
    )

    write_bench_json(
        "a3_batch_queries",
        {
            "queries": len(suite),
            "distinct_queries": len(DISTINCT_QUERIES),
            "workers": BATCH_WORKERS,
            "sequential_seconds": round(seq_seconds, 6),
            "batch_seconds": round(batch_seconds, 6),
            "speedup": round(speedup, 2),
            "verification_hits": metrics.verification_hits,
            "verification_misses": metrics.verification_misses,
            "translation_hits": metrics.translation_hits,
            "translation_misses": metrics.translation_misses,
        },
    )

    # Steady-state benchmark: the warm-cache batch the audit loop would run.
    benchmark.pedantic(
        pipeline.query_batch,
        args=(tiktak_model, suite),
        kwargs={"max_workers": BATCH_WORKERS},
        rounds=3,
        iterations=1,
    )
