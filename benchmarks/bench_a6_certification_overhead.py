"""A6 — what does trust-but-verify cost?

Certification (PR 4) re-validates every decided verdict with an
independent checker: SAT models are re-evaluated against the grounded CNF
and the original FOL assertions, UNSAT verdicts replay their DRUP proof
by unit propagation, and theory lemmas are certified against fresh axiom
instantiations.  It runs *inside* the query path by default, so its cost
is the price of every single-query soundness guarantee.

This bench runs the A3 query corpus against the TikTak model with
certification off (the pre-PR-4 behaviour) and on, caches disabled so
every query pays the full verification, and reports:

* wall-clock per regime (best of ``ROUNDS`` to shed scheduler noise),
* the overhead percentage — **target < 25%** on query-sized problems,
* the per-verdict certificate cost drawn from ``CertificateReport.seconds``
  and the check mix (model-check vs proof-replay vs lemma certification).
"""

import time

from conftest import print_table, write_bench_json

from repro import PipelineConfig, PolicyPipeline

QUERIES = [
    "The user provides email to TikTak.",
    "The user provides phone number to TikTak.",
    "TikTak collects email address.",
    "TikTak shares biometric identifiers with data brokers.",
    "TikTak collects the location information.",
]
REPEATS = 4  # 5 distinct x 4 = 20 queries per timed round
ROUNDS = 5  # interleaved best-of to shed scheduler noise
OVERHEAD_TARGET = 0.25


def _timed_round(model, *, certify: bool):
    pipeline = PolicyPipeline(
        config=PipelineConfig(enable_query_caches=False, certify=certify)
    )
    start = time.perf_counter()
    outcomes = [pipeline.query(model, q) for q in QUERIES * REPEATS]
    return outcomes, time.perf_counter() - start


def test_a6_certification_overhead(tiktak_model):
    # Warm both paths once, then interleave the regimes round by round so a
    # background stall hits both equally instead of biasing one side.
    _timed_round(tiktak_model, certify=True)
    plain_seconds = certified_seconds = float("inf")
    plain: list = []
    certified: list = []
    for _ in range(ROUNDS):
        outcomes, seconds = _timed_round(tiktak_model, certify=False)
        if seconds < plain_seconds:
            plain, plain_seconds = outcomes, seconds
        outcomes, seconds = _timed_round(tiktak_model, certify=True)
        if seconds < certified_seconds:
            certified, certified_seconds = outcomes, seconds

    # Certification is a checker, not a solver: verdicts must be identical
    # and every certificate on this clean corpus must pass.
    assert [o.verdict for o in certified] == [o.verdict for o in plain]
    reports = [
        o.verification.certificate
        for o in certified
        if o.verification.certificate is not None
    ]
    assert len(reports) == len(certified)
    assert all(r.certified for r in reports)

    overhead = (certified_seconds - plain_seconds) / plain_seconds
    cert_seconds = sum(r.seconds for r in reports)
    by_verdict: dict[str, list] = {}
    for report in reports:
        by_verdict.setdefault(report.verdict, []).append(report)

    rows: list[list[object]] = [
        ["certify off", f"{plain_seconds:.3f}", "-", "-", "-"],
        [
            "certify on",
            f"{certified_seconds:.3f}",
            f"{overhead * 100:.1f}%",
            f"{cert_seconds:.3f}",
            f"{len(reports)} certificates",
        ],
    ]
    for verdict, group in sorted(by_verdict.items()):
        checks = sorted({c for r in group for c in r.checks})
        rows.append(
            [
                f"  {verdict} verdicts",
                "-",
                "-",
                f"{sum(r.seconds for r in group):.3f}",
                f"{len(group)}x: {', '.join(checks)}",
            ]
        )

    print_table(
        f"A6: certification overhead ({len(QUERIES) * REPEATS} queries, "
        f"best of {ROUNDS} rounds, target <{OVERHEAD_TARGET:.0%})",
        ["regime", "seconds", "overhead", "cert seconds", "detail"],
        rows,
    )

    # The acceptance target: trust-but-verify costs <25% on query-sized
    # problems.  (Measured ~15% on the reference container.)
    assert overhead < OVERHEAD_TARGET, (
        f"certification overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_TARGET:.0%} target"
    )
    # Both SAT model-checking and UNSAT proof replay must actually have
    # been exercised by the corpus, or the overhead number is vacuous.
    exercised = {c for r in reports for c in r.checks}
    assert "cnf-model" in exercised or "fol-model" in exercised
    assert "proof-replay" in exercised

    write_bench_json(
        "a6_certification_overhead",
        {
            "queries": len(QUERIES) * REPEATS,
            "rounds": ROUNDS,
            "plain_seconds": round(plain_seconds, 6),
            "certified_seconds": round(certified_seconds, 6),
            "overhead": round(overhead, 4),
            "overhead_target": OVERHEAD_TARGET,
            "certificate_seconds": round(cert_seconds, 6),
            "certificates": len(reports),
            "checks_exercised": sorted(exercised),
        },
    )
