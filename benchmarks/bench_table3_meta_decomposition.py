"""Table 3 — Meta policy statements with complex multi-actor data flows.

Regenerates the camera/voice, interaction-tracking, and payments examples:
multi-actor statements where both the user's provision and the company's
collection appear as separate edges, and the payment ecosystem decomposes
into distinct processing stages (process / access / preserve).
"""

from conftest import print_table

from repro.corpus import METABOOK_SHOWCASE


def test_table3_decomposition(benchmark, pipeline):
    runner = pipeline.runner
    rows = []
    extracted = []
    for statement, min_edges in METABOOK_SHOWCASE:
        practices = runner.extract_parameters(statement, "MetaBook")
        extracted.append((statement, min_edges, practices))
        rows.append([statement[:52] + "...", min_edges, len(practices)])

    print_table(
        "Table 3: MetaBook statements with multi-actor flows",
        ["Policy statement", "paper#", "measured#"],
        rows,
    )
    for statement, _n, practices in extracted:
        print(f"\n  {statement[:70]}...")
        for p in practices:
            print(f"    [{p.sender}] -{p.action}-> [{p.data_type}]")

    for statement, min_edges, practices in extracted:
        assert len(practices) >= min_edges, statement

    # Camera/voice: both user provision and company collection present.
    _s, _n, camera = extracted[0]
    senders = {p.sender for p in camera}
    assert {"user", "MetaBook"} <= senders

    # Interaction tracking: viewing and interacting are distinct actions on
    # both content and ads.
    _s, _n, tracking = extracted[1]
    pairs = {(p.action, p.data_type) for p in tracking}
    assert ("view", "content") in pairs
    assert ("interact", "content") in pairs or ("interact with", "content") in pairs
    assert any(d == "ad" or "ad" in d for _a, d in pairs)

    # Payments: the three data-handling stages are separate edges.
    _s, _n, payments = extracted[2]
    actions = {p.action for p in payments if p.sender == "MetaBook"}
    assert {"process", "access", "preserve"} <= actions

    from repro.llm.simulated import extract_practices

    benchmark(extract_practices, METABOOK_SHOWCASE[2][0], "MetaBook")
