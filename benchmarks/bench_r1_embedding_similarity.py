"""R1 — §4.2 narrative: embedding-based term matching.

The paper reports that a query term "email address" matches the policy's
"email" node with 0.999 similarity, and that "location data" queries match
"location information" and "gps location".  Our offline embedder's absolute
scores differ; the reproduced shape is the *ranking*: the intended policy
term is the top-1 match and the LLM equivalence check confirms it.
"""

from conftest import print_table

from repro.core.translation import translate_term
from repro.embeddings.search import top_k

#: (query term, acceptable policy-vocabulary translations).  Query terms are
#: chosen to be *absent* from the policy vocabulary so translation is real.
PAIRS = [
    ("e-mail address", {"email address", "email"}),
    ("telephone number", {"phone number"}),
    ("web history", {"browsing history", "history"}),
    ("geolocation", {"gps location", "location", "location information"}),
    ("internet protocol address", {"ip address"}),
]


def test_r1_embedding_similarity(benchmark, pipeline, tiktak_model):
    store = tiktak_model.store
    vocabulary = tiktak_model.node_vocabulary

    rows = []
    results = []
    for query, accepted in PAIRS:
        assert query not in vocabulary, f"{query} leaked into the vocabulary"
        result = translate_term(
            pipeline.runner, store, query, vocabulary=vocabulary
        )
        hits = [h for h in top_k(store, query, k=10) if h.key in vocabulary]
        top = hits[0] if hits else None
        results.append((query, accepted, result))
        rows.append(
            [
                query,
                "/".join(sorted(accepted)),
                result.translated,
                f"{result.similarity:.3f}",
                result.verified,
                top.key if top else "-",
            ]
        )

    print_table(
        "R1: query-term translation (paper: 'email address'~'email' @0.999)",
        ["query term", "accepted", "translated to", "similarity", "LLM-verified", "top-1 hit"],
        rows,
    )

    for query, accepted, result in results:
        assert result.translated in accepted, (
            f"{query} translated to {result.translated}"
        )
        assert result.verified

    benchmark(
        translate_term,
        pipeline.runner,
        store,
        "e-mail address",
        vocabulary=vocabulary,
    )
