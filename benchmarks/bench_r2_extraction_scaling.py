"""R2 — §4.4/§5: "the extraction itself scales linearly with policy size
through segmentation and caching."

Sweeps generated policies from 2k to 32k words, measures Phase 1+2 wall
time per policy, and asserts near-linear scaling: time per word at 32k is
within 3x of time per word at 2k (a quadratic pipeline would be ~16x).
"""

import time

from conftest import print_table

from repro import PolicyPipeline
from repro.corpus.generator import GeneratorProfile, PolicyGenerator

SIZES = (2_000, 4_000, 8_000, 16_000, 32_000)


def _process(words: int) -> tuple[float, int, int]:
    profile = GeneratorProfile(company="ScaleCo", platform="ScaleCo", seed=words)
    doc = PolicyGenerator(profile).generate(words)
    pipeline = PolicyPipeline()
    start = time.perf_counter()
    model = pipeline.process(doc.text)
    elapsed = time.perf_counter() - start
    return elapsed, doc.word_count, model.statistics.total_edges


def test_r2_extraction_scaling(benchmark):
    rows = []
    per_word = {}
    for words in SIZES:
        elapsed, actual_words, edges = _process(words)
        per_word[words] = elapsed / actual_words
        rows.append(
            [
                f"{words:,}",
                f"{actual_words:,}",
                edges,
                f"{elapsed:.2f}",
                f"{1e6 * per_word[words]:.1f}",
            ]
        )

    print_table(
        "R2: extraction time vs policy size (paper claim: linear)",
        ["target words", "actual words", "edges", "seconds", "us/word"],
        rows,
    )

    # Near-linear: cost per word grows by at most 3x across a 16x size span.
    ratio = per_word[SIZES[-1]] / per_word[SIZES[0]]
    print(f"  per-word cost ratio ({SIZES[-1]:,} vs {SIZES[0]:,} words): {ratio:.2f}x")
    assert ratio < 3.0, f"extraction is super-linear: {ratio:.2f}x per-word growth"

    benchmark.pedantic(_process, args=(4_000,), rounds=2, iterations=1)
