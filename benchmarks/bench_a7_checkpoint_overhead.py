"""A7 — checkpoint journaling overhead on the batch query engine.

The supervised job runner (:mod:`repro.jobs`) streams every completed
outcome into an append-only fsync'd journal so a killed audit resumes
instead of restarting.  Durability that slows the common (no-crash) case
down too much would never be left on, so this bench prices it: the A3
repeated-term suite through plain ``query_batch`` versus a checkpointed
``JobRunner``, cold caches both sides, best-of-N to squeeze out scheduler
noise.

Asserts the supervised run is verdict-identical to the plain batch and
costs **< 10% wall-clock overhead** — the journal appends happen on the
worker threads between queries, so the solver work dominates.
"""

import json
import time

from conftest import print_table, write_bench_json

from repro import JobConfig, JobRunner

DISTINCT_QUERIES = [
    "The user provides email to TikTak.",
    "The user provides phone number to TikTak.",
    "TikTak collects email address.",
    "TikTak shares biometric identifiers with data brokers.",
    "TikTak collects the location information.",
]
REPEATS = 8  # the A3 audit suite: 5 distinct x 8 = 40 queries
BATCH_WORKERS = 8
ROUNDS = 3
MAX_OVERHEAD = 0.10


def _trace(outcome) -> str:
    return json.dumps(outcome.as_dict(), sort_keys=True)


def _best_of(rounds, run):
    """Best wall-clock of ``rounds`` cold-cache runs (noise floor)."""
    best_seconds, best_result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = run()
        seconds = time.perf_counter() - start
        if seconds < best_seconds:
            best_seconds, best_result = seconds, result
    return best_seconds, best_result


def test_a7_checkpoint_overhead(pipeline, tiktak_model, tmp_path, benchmark):
    suite = DISTINCT_QUERIES * REPEATS

    def plain():
        tiktak_model.caches.clear()
        return pipeline.query_batch(
            tiktak_model, suite, max_workers=BATCH_WORKERS
        )

    run_counter = [0]

    def checkpointed():
        run_counter[0] += 1
        tiktak_model.caches.clear()
        runner = JobRunner(
            pipeline,
            tiktak_model,
            JobConfig(
                max_workers=BATCH_WORKERS,
                checkpoint_dir=str(tmp_path / f"ckpt-{run_counter[0]}"),
                handle_signals=False,
            ),
        )
        return runner.run(suite)

    plain_seconds, batch = _best_of(ROUNDS, plain)
    job_seconds, job = _best_of(ROUNDS, checkpointed)

    # Supervision is a wrapper, not a different engine: every verdict (and
    # the full trace) matches the plain batch, and every outcome reached
    # the journal.
    assert job.pending == []
    assert [o.verdict for o in job.outcomes] == batch.verdicts
    assert [_trace(o) for o in job.outcomes] == [
        _trace(o) for o in batch.outcomes
    ]
    assert job.metrics.checkpoint_records == len(suite)

    overhead = (job_seconds - plain_seconds) / plain_seconds
    print_table(
        f"A7: checkpoint overhead ({len(suite)} queries, "
        f"{BATCH_WORKERS} workers, best of {ROUNDS})",
        ["mode", "seconds", "overhead", "journal records"],
        [
            ["query_batch (no checkpoint)", f"{plain_seconds:.3f}", "-", "-"],
            [
                "JobRunner (fsync'd journal)",
                f"{job_seconds:.3f}",
                f"{overhead:+.1%}",
                f"{job.metrics.checkpoint_records}",
            ],
        ],
    )

    assert overhead < MAX_OVERHEAD, (
        f"checkpoint journaling cost {overhead:.1%} wall-clock "
        f"({plain_seconds:.3f}s plain vs {job_seconds:.3f}s supervised); "
        f"the <{MAX_OVERHEAD:.0%} budget says durability must ride along "
        f"with solver work, not dominate it"
    )

    write_bench_json(
        "a7_checkpoint_overhead",
        {
            "queries": len(suite),
            "workers": BATCH_WORKERS,
            "rounds": ROUNDS,
            "plain_seconds": round(plain_seconds, 6),
            "supervised_seconds": round(job_seconds, 6),
            "overhead": round(overhead, 4),
            "overhead_budget": MAX_OVERHEAD,
            "journal_records": job.metrics.checkpoint_records,
        },
    )

    # Steady-state number for regression tracking: the checkpointed run.
    benchmark.pedantic(checkpointed, rounds=ROUNDS, iterations=1)
