"""A12 — served latency with the background scrubber on vs off.

The scrubber's contract (PR 10) is that integrity verification is near
free for the serving path: a tick that observes queries in flight
(``gate.depth > 0``) pauses instead of hashing, so the only cost a
request can observe is one snapshot hash that started while the gate was
idle.  This bench prices that contract and asserts the served p95 with
scrubbing stays within **10%** of the bare p95 (the acceptance bar from
the PR).

Measurement design — a 10% bound on a ~3 ms p95 is 0.3 ms, well inside
container scheduler jitter, so the naive "two servers, compare tails"
reading is hopelessly flaky.  Instead:

* **one server, one keep-alive client** — both modes share the process,
  sockets, and warm caches, so server-start variance never enters;
* **ABBA round ordering** — each round measures one bare and one
  scrubbed block, alternating which goes first, cancelling slow drift
  (GC, page cache, thermal);
* **paired per-round ratios** — degradation is the median of
  ``scrub_p95 / bare_p95`` computed *within* each round, so a co-tenant
  load phase spanning several seconds inflates both legs of the rounds
  it touches and cancels out, instead of landing on whichever mode was
  unlucky enough to be measured during it.

The scrubber is attached to the server's own admission gate (the exact
coupling ``ServerConfig.scrub_interval`` wires up; the end-to-end wiring
itself is covered by the ``-m integrity`` suite), and the bench asserts
it actually verified artifacts during the scrubbed blocks so a green run
cannot be a scrubber that never ran.
"""

import statistics
import time

from conftest import print_table, write_bench_json

from repro import PolicyPipeline, PolicyServer, ServerConfig, ServingClient
from repro.integrity.scrub import BackgroundScrubber
from repro.registry import MintSpec, PolicyRegistry

QUESTION = "The company shares the email address with advertisers."
FLEET = MintSpec(count=4, seed=53, target_words=(340,))
ROUNDS = 6  # each round = one bare block + one scrubbed block (ABBA order)
REQUESTS_PER_BLOCK = 250
WARMUP_REQUESTS = 50
# ~33x more aggressive than the 5s default, yet a bounded duty cycle:
# one ~2ms snapshot hash per 150ms puts ~1% of requests behind a hash,
# which the p95 (the worst 5%) absorbs.  Much shorter intervals push the
# collision rate past the quantile — at 5ms the scrubber hashes between
# *every* request and GIL contention shows up as ~30% p95.  That is a
# misconfiguration, not a regression, so the bench does not price it.
SCRUB_INTERVAL = 0.15
MAX_P95_DEGRADATION = 0.10


def _block_p95(client, companies) -> float:
    samples = []
    for i in range(REQUESTS_PER_BLOCK):
        company = companies[i % len(companies)]
        start = time.perf_counter()
        status, _body = client.query(company, QUESTION)
        samples.append(time.perf_counter() - start)
        assert status == 200
    samples.sort()
    return samples[int(0.95 * (len(samples) - 1))]


def test_a12_scrub_overhead(pipeline, tmp_path):
    registry = PolicyRegistry(tmp_path / "reg", pipeline=pipeline, max_warm=8)
    report = registry.mint(FLEET)
    companies = registry.companies()
    assert len(report.minted) == FLEET.count

    server = PolicyServer(
        ServerConfig(
            root=registry.root,
            port=0,
            max_pending=8,
            warm_on_start=-1,
            handle_signals=False,
        ),
        pipeline=PolicyPipeline(),
    )
    server.start()
    try:
        host, port = server.address
        client = ServingClient(host, port, timeout=30.0)
        try:
            for _ in range(WARMUP_REQUESTS):
                client.query(companies[0], QUESTION)
            scrubber = BackgroundScrubber(
                registry.root, interval=SCRUB_INTERVAL, gate=server.gate
            )
            bare_p95s: list[float] = []
            scrub_p95s: list[float] = []
            for round_index in range(ROUNDS):
                bare_first = round_index % 2 == 0
                for leg in (0, 1):
                    if (leg == 0) == bare_first:
                        bare_p95s.append(_block_p95(client, companies))
                    else:
                        scrubber.start()
                        try:
                            scrub_p95s.append(_block_p95(client, companies))
                        finally:
                            scrubber.stop()
        finally:
            client.close()
    finally:
        server.stop()

    # The scrubber must have actually worked during the scrubbed blocks —
    # a paused-forever or never-started scrubber would make this bench
    # vacuous.
    assert scrubber.snapshots_verified > 0
    assert scrubber.artifacts_verified > 0
    assert scrubber.findings_total == 0  # clean fleet: detection is not priced

    bare_p95 = statistics.median(bare_p95s)
    scrub_p95 = statistics.median(scrub_p95s)
    ratios = [s / b for s, b in zip(scrub_p95s, bare_p95s)]
    degradation = statistics.median(ratios) - 1.0

    print_table(
        f"A12: scrub overhead ({ROUNDS} ABBA rounds x {REQUESTS_PER_BLOCK} "
        f"requests per block over {len(companies)} companies, "
        f"interval={SCRUB_INTERVAL}s)",
        ["mode", "p95 (median of rounds)", "scrub work"],
        [
            ["bare serving", f"{bare_p95 * 1e3:.2f} ms", "-"],
            [
                "scrubber running",
                f"{scrub_p95 * 1e3:.2f} ms",
                f"{scrubber.snapshots_verified} snaps, "
                f"{scrubber.artifacts_verified} artifacts, "
                f"{scrubber.paused} paused ticks",
            ],
            [
                "p95 degradation",
                f"{degradation * 100:+.1f}%",
                f"bar: <= +{MAX_P95_DEGRADATION * 100:.0f}%",
            ],
        ],
    )

    assert degradation <= MAX_P95_DEGRADATION, (
        f"served p95 degraded {degradation * 100:.1f}% with the scrubber "
        f"running ({scrub_p95 * 1e3:.2f} ms vs {bare_p95 * 1e3:.2f} ms); "
        f"the admission-aware pause is supposed to cap this at "
        f"{MAX_P95_DEGRADATION * 100:.0f}%"
    )

    write_bench_json(
        "a12_scrub_overhead",
        {
            "companies": len(companies),
            "rounds": ROUNDS,
            "requests_per_block": REQUESTS_PER_BLOCK,
            "scrub_interval_seconds": SCRUB_INTERVAL,
            "bare_p95_seconds": round(bare_p95, 6),
            "scrub_p95_seconds": round(scrub_p95, 6),
            "p95_degradation": round(degradation, 4),
            "max_p95_degradation": MAX_P95_DEGRADATION,
            "snapshots_verified": scrubber.snapshots_verified,
            "artifacts_verified": scrubber.artifacts_verified,
            "paused_ticks": scrubber.paused,
        },
    )
