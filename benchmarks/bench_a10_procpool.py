"""A10 — process-pool execution backend: GIL escape and portfolio rescues.

The solver hot path is pure-Python CPU work, so the thread-backend batch
engine serializes on the GIL no matter how many workers it runs.  The
process backend (``repro.procpool``) ships each SMT-LIB script to a
supervised worker process; on a multi-core box the same batch of hard
formulas should finish close to ``cores``-times faster.

Measures the same suite of hard pigeonhole units solved (a) in-process on
a thread pool — the thread backend's execution shape — and (b) on the
supervised worker pool, asserting status-identical answers everywhere and
a >= 2x wall-clock speedup when at least 4 CPUs are available (on fewer
cores the numbers are recorded without the assertion: there is no
parallelism to win).  Also runs the portfolio rescue over deterministic
budget-exhausted formulas and counts rescued verdicts — the robustness
half of the backend's value: answers, not UNKNOWNs, from the same budget.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import print_table, write_bench_json

from repro.procpool import PortfolioConfig, ProcPoolConfig, WorkerSupervisor, WorkUnit
from repro.smtlib.parser import execute_script
from repro.solver.interface import SolverBudget
from repro.solver.result import SatResult

UNITS = 6
WORKERS = 4
PIGEONS = 8  # PHP(8,7): a few seconds of pure CPU per unit
RESCUE_FORMULAS = 3
RESCUE_BUDGET = SolverBudget(max_conflicts=30)
# No wall-clock ceiling on the measured units: GIL-serialized threads
# inflate each solve's *wall* time past the default 10s deadline, which
# would turn the baseline's answers into timeout UNKNOWNs and hide the
# very contention being measured.
UNIT_BUDGET = SolverBudget(timeout_seconds=None)


def php_script(pigeons: int, *, guard: bool = False) -> str:
    """PHP(n, n-1); with ``guard``, every clause is escaped by a fresh
    guard variable ``s`` (decision var 1), making the formula trivially
    SAT for any seed that phases ``s`` True and exponentially hard for
    seed 0's all-False dive — the deterministic rescue shape."""
    holes = pigeons - 1
    lines = ["(set-logic UF)"]
    if guard:
        lines.append("(declare-fun s () Bool)")

    def var(i: int, j: int) -> str:
        return f"x{i}_{j}"

    for i in range(pigeons):
        for j in range(holes):
            lines.append(f"(declare-fun {var(i, j)} () Bool)")
    g = "s " if guard else ""
    for i in range(pigeons):
        lits = " ".join(var(i, j) for j in range(holes))
        lines.append(f"(assert (or {g}{lits}))")
    for j in range(holes):
        for i in range(pigeons):
            for k in range(i + 1, pigeons):
                lines.append(
                    f"(assert (or {g}(not {var(i, j)}) (not {var(k, j)})))"
                )
    lines.append("(check-sat)")
    return "\n".join(lines)


def test_a10_procpool_speedup_and_rescues():
    script = php_script(PIGEONS)
    cores = os.cpu_count() or 1

    # (a) Thread backend shape: in-process solves on a thread pool.  The
    # GIL serializes them — this is what query_batch's executor gets.
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        thread_results = list(
            pool.map(
                lambda _: execute_script(script, budget=UNIT_BUDGET)[-1],
                range(UNITS),
            )
        )
    thread_seconds = time.perf_counter() - start
    assert all(r.status is SatResult.UNSAT for r in thread_results)

    # (b) Process backend: same units on the supervised worker pool.
    supervisor = WorkerSupervisor(ProcPoolConfig(workers=WORKERS))
    try:
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            outcomes = list(
                pool.map(
                    lambda i: supervisor.run_unit(
                        WorkUnit(
                            script_text=script,
                            budget=UNIT_BUDGET,
                            label=f"php-{i}",
                        )
                    ),
                    range(UNITS),
                )
            )
        process_seconds = time.perf_counter() - start
        assert all(o.ok for o in outcomes)
        assert all(o.results[-1].status is SatResult.UNSAT for o in outcomes)

        # (c) Portfolio rescues: budget-exhausted formulas answered
        # decisively (and certified) by the seed race.
        rescued = 0
        start = time.perf_counter()
        for index in range(RESCUE_FORMULAS):
            outcome = supervisor.run_rescued(
                WorkUnit(
                    script_text=php_script(6 + index, guard=True),
                    budget=RESCUE_BUDGET,
                    label=f"rescue-{index}",
                ),
                portfolio=PortfolioConfig(),
            )
            assert outcome.ok
            if outcome.rescued_seed is not None:
                result = outcome.results[-1]
                assert result.status is SatResult.SAT
                assert result.certificate is not None
                assert not result.certificate.failed
                rescued += 1
        rescue_seconds = time.perf_counter() - start
        pool_stats = supervisor.stats()
    finally:
        supervisor.shutdown()
    assert supervisor.live_pids() == []

    speedup = (
        thread_seconds / process_seconds if process_seconds > 0 else float("inf")
    )
    print_table(
        f"A10: process-pool backend ({UNITS} x PHP({PIGEONS},{PIGEONS - 1}), "
        f"{WORKERS} workers, {cores} cores)",
        ["mode", "seconds", "speedup", "notes"],
        [
            ["thread pool (GIL-bound)", f"{thread_seconds:.2f}", "1.0x", "-"],
            [
                f"process pool ({WORKERS} workers)",
                f"{process_seconds:.2f}",
                f"{speedup:.1f}x",
                f"{pool_stats['workers_spawned']} workers spawned",
            ],
            [
                "portfolio rescues",
                f"{rescue_seconds:.2f}",
                "-",
                f"{rescued}/{RESCUE_FORMULAS} budget-UNKNOWNs rescued to "
                "certified SAT",
            ],
        ],
    )

    # Every budget-exhausted rescue formula must come back decisive: the
    # guard construction makes the race deterministic.
    assert rescued == RESCUE_FORMULAS
    # The parallel win needs actual cores; on a starved box the numbers
    # are recorded but the ratio proves nothing about the backend.
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x on {cores} cores, got {speedup:.2f}x "
            f"({thread_seconds:.2f}s threads vs {process_seconds:.2f}s processes)"
        )

    write_bench_json(
        "a10_procpool",
        {
            "units": UNITS,
            "workers": WORKERS,
            "cpu_count": cores,
            "pigeons": PIGEONS,
            "thread_seconds": round(thread_seconds, 6),
            "process_seconds": round(process_seconds, 6),
            "speedup": round(speedup, 2),
            "rescue_formulas": RESCUE_FORMULAS,
            "rescued": rescued,
            "rescue_seconds": round(rescue_seconds, 6),
            "workers_spawned": pool_stats["workers_spawned"],
        },
    )
