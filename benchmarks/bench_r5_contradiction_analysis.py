"""R5 — §1.1 Challenge 3: apparent contradictions are mostly coherent.

PolicyLint (cited by the paper) found 14.2% of apps contain apparent
contradictions and that "manual review revealed most were actually
coherent exception patterns."  This bench scans both bundled policies plus
a fleet of generated ones, classifies every apparent contradiction, and
scores the classifier against the generator's injected ground truth.
"""

from conftest import print_table

from repro.analysis import find_contradictions
from repro.corpus import metabook_policy, tiktak_policy
from repro.corpus.generator import GeneratorProfile, PolicyGenerator
from repro.nlp.morphology import singularize_phrase

FLEET_SIZE = 6


def test_r5_contradiction_analysis(benchmark, pipeline, tiktak_model, metabook_model):
    rows = []

    # The two bundled policies.
    for name, model, doc in (
        ("TikTak", tiktak_model, tiktak_policy()),
        ("MetaBook", metabook_model, metabook_policy()),
    ):
        report = find_contradictions(
            model.extraction.practices, data_taxonomy=model.data_taxonomy
        )
        truth_genuine = sum(1 for p in doc.exception_pairs if not p.coherent)
        rows.append(
            [
                name,
                report.total,
                len(report.coherent),
                f"{report.coherent_fraction:.1%}",
                len(report.genuine),
                truth_genuine,
            ]
        )
        assert report.coherent_fraction > 0.8  # "most were coherent"
        found_genuine = {singularize_phrase(c.denial.data_type) for c in report.genuine}
        for pair in doc.exception_pairs:
            if not pair.coherent:
                assert singularize_phrase(pair.data_type) in found_genuine

    # A fleet of generated policies with varying contradiction rates.
    from repro.core.extraction import extract_policy

    recovered = 0
    injected = 0
    for seed in range(FLEET_SIZE):
        profile = GeneratorProfile(
            company=f"Fleet{seed}",
            platform=f"Fleet{seed}",
            seed=1000 + seed,
            exception_pairs=6,
            incoherent_exception_fraction=0.3,
        )
        doc = PolicyGenerator(profile).generate(2500)
        extraction = extract_policy(
            pipeline.runner, doc.text, company=profile.company
        )
        report = find_contradictions(extraction.practices)
        truth = {
            singularize_phrase(p.data_type)
            for p in doc.exception_pairs
            if not p.coherent
        }
        found = {singularize_phrase(c.denial.data_type) for c in report.genuine}
        injected += len(truth)
        recovered += len(truth & found)
        rows.append(
            [
                f"Fleet{seed}",
                report.total,
                len(report.coherent),
                f"{report.coherent_fraction:.1%}",
                len(report.genuine),
                len(truth),
            ]
        )

    print_table(
        "R5: apparent contradictions and their resolution (PolicyLint: mostly coherent)",
        ["policy", "apparent", "coherent", "coherent%", "flagged genuine", "injected genuine"],
        rows,
    )
    print(f"  injected genuine contradictions recovered: {recovered}/{injected}")
    assert recovered == injected

    benchmark(
        find_contradictions,
        tiktak_model.extraction.practices,
        data_taxonomy=tiktak_model.data_taxonomy,
    )
