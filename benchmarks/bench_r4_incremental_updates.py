"""R4 — §2/§5: incremental updates re-extract only modified segments.

"This hashing enables incremental updates - when policies change, we
identify modified segments and only re-extract those."

Edits k statements of the TikTok-scale policy and compares a full
reprocess against the incremental update: segments re-extracted, LLM calls
made, and wall time.  Asserts the reuse fraction and the LLM-call savings.
"""

import time

from conftest import print_table

from repro import PolicyPipeline
from repro.corpus import tiktak_policy


def _edit_policy(text: str, k: int) -> str:
    """Append k new statements (each a new segment) to the policy."""
    additions = "\n".join(
        f"We collect your synthetic datapoint number {i} when you use feature {i}."
        for i in range(k)
    )
    return text + "\n" + additions + "\n"


def test_r4_incremental_updates(benchmark):
    base_text = tiktak_policy().text
    pipeline = PolicyPipeline()
    model = pipeline.process(base_text)
    total_segments = len(model.extraction.segments)

    rows = []
    for k in (1, 5, 25, 100):
        edited = _edit_policy(base_text, k)

        # Full reprocess with a cold pipeline.
        cold = PolicyPipeline()
        start = time.perf_counter()
        cold.process(edited)
        full_seconds = time.perf_counter() - start
        full_calls = cold.llm.stats.calls

        # Incremental update reusing the existing model (rebuild mode).
        warm = PolicyPipeline()
        warm_model = warm.process(base_text)
        calls_before = warm.llm.stats.calls
        start = time.perf_counter()
        rebuilt_model, stats = warm.update(warm_model, edited)
        incr_seconds = time.perf_counter() - start
        incr_calls = warm.llm.stats.calls - calls_before

        # In-place update: patch the existing graph/taxonomies directly.
        patcher = PolicyPipeline()
        patch_model = patcher.process(base_text)
        start = time.perf_counter()
        patched_model, _patch_stats = patcher.update(
            patch_model, edited, in_place=True
        )
        inplace_seconds = time.perf_counter() - start
        assert (
            patched_model.statistics.total_edges
            == rebuilt_model.statistics.total_edges
        )

        rows.append(
            [
                k,
                stats.segments_total,
                stats.segments_reextracted,
                f"{stats.reuse_fraction:.1%}",
                full_calls,
                incr_calls,
                f"{full_seconds:.2f}",
                f"{incr_seconds:.2f}",
                f"{inplace_seconds:.2f}",
            ]
        )

        assert stats.segments_reextracted == k
        assert stats.reuse_fraction > 0.9
        # The incremental path must save the vast majority of LLM calls.
        assert incr_calls < 0.2 * full_calls

    print_table(
        f"R4: incremental update vs full reprocess ({total_segments} base segments)",
        [
            "edited",
            "segments",
            "re-extracted",
            "reuse",
            "LLM calls (full)",
            "LLM calls (incr)",
            "full s",
            "incr s",
            "in-place s",
        ],
        rows,
    )

    # Benchmark the no-op update (pure cache traversal).
    warm = PolicyPipeline()
    warm_model = warm.process(base_text)
    benchmark.pedantic(
        warm.update, args=(warm_model, base_text), rounds=3, iterations=1
    )
