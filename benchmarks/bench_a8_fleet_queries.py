"""A8 — warm-registry fleet fan-out vs N cold single-policy invocations.

The registry's reason to exist: asking one question of a hundred
companies should not cost a hundred cold pipeline start-ups.  This bench
mints a 100+ policy fleet (deterministic per seed), then prices the same
audit two ways:

* **cold** — what ``N`` separate CLI invocations do: a fresh
  ``PolicyPipeline`` per company, load the shard from disk, run the one
  query, throw everything away;
* **warm** — one ``registry.query_fleet`` fan-out over a pre-warmed LRU
  through the supervised job runner.

Asserts the warm fan-out is **>= 3x** faster, verdict-identical to the
cold runs, and — the durability rider — that a fleet killed mid-run
resumes from its checkpoint to byte-identical report bytes.
"""

import time

from conftest import print_table, write_bench_json

from repro import JobConfig, PolicyPipeline
from repro.registry import MintSpec, PolicyRegistry
from repro.store.faults import CrashInjector, SimulatedCrash

QUESTION = "The company shares the email address with advertisers."
FLEET_SIZE = 108  # acceptance floor is 100+ minted policies
SPEC = MintSpec(count=FLEET_SIZE, seed=42, target_words=(340,))
FLEET_WORKERS = 8
ROUNDS = 2
MIN_SPEEDUP = 3.0
KILL_AFTER = 10  # verdict records durable before the simulated kill


def _best_of(rounds, run):
    """Best wall-clock of ``rounds`` runs (noise floor)."""
    best_seconds, best_result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = run()
        seconds = time.perf_counter() - start
        if seconds < best_seconds:
            best_seconds, best_result = seconds, result
    return best_seconds, best_result


def test_a8_fleet_queries(pipeline, tmp_path, benchmark):
    registry = PolicyRegistry(
        tmp_path / "reg", pipeline=pipeline, max_warm=FLEET_SIZE + 8
    )
    mint_report = registry.mint(SPEC)
    companies = registry.companies()
    assert len(mint_report.minted) == FLEET_SIZE
    assert len(companies) >= 100

    def cold():
        """N independent invocations: fresh pipeline + shard load each."""
        verdicts = {}
        for company in companies:
            solo = PolicyPipeline()
            model = solo.load_model(
                registry.root / registry.entry(company).store_dir
            )
            verdicts[company] = solo.query(model, QUESTION).verdict
        return verdicts

    loads = registry.warm()  # pre-load outside the timed region
    assert loads == FLEET_SIZE

    def warm():
        for company in companies:
            registry.get_model(company).caches.clear()  # cold queries, warm models
        return registry.query_fleet(
            QUESTION,
            config=JobConfig(max_workers=FLEET_WORKERS, handle_signals=False),
        )

    cold_seconds, cold_verdicts = _best_of(ROUNDS, cold)
    warm_seconds, fleet = _best_of(ROUNDS, warm)

    # Same verdict per company, whichever way the fleet was asked.
    assert not fleet.aborted
    assert {c: o.verdict for c, o in fleet.per_company()} == cold_verdicts

    # Durability rider: kill the fan-out mid-run, resume, compare bytes.
    ckpt = JobConfig(
        max_workers=FLEET_WORKERS,
        checkpoint_dir=tmp_path / "ckpt",
        checkpoint_fsync=True,
        handle_signals=False,
    )
    killed = False
    try:
        registry.query_fleet(
            QUESTION,
            config=ckpt,
            journal_step=CrashInjector(f"sync:record:{KILL_AFTER}"),
        )
    except SimulatedCrash:
        killed = True
    assert killed
    resumed = registry.resume_fleet(QUESTION, config=ckpt)
    assert resumed.job.restored >= 1
    assert resumed.digest() == fleet.digest()

    speedup = cold_seconds / warm_seconds
    print_table(
        f"A8: fleet fan-out ({len(companies)} companies, "
        f"{FLEET_WORKERS} workers, best of {ROUNDS})",
        ["mode", "seconds", "per company", "speedup"],
        [
            [
                "cold: N fresh pipelines",
                f"{cold_seconds:.3f}",
                f"{cold_seconds / len(companies) * 1e3:.1f} ms",
                "1.0x",
            ],
            [
                "warm: registry.query_fleet",
                f"{warm_seconds:.3f}",
                f"{warm_seconds / len(companies) * 1e3:.1f} ms",
                f"{speedup:.1f}x",
            ],
            [
                "mint (one-time)",
                f"{mint_report.seconds:.3f}",
                f"{mint_report.seconds / len(companies) * 1e3:.1f} ms",
                "-",
            ],
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"warm fleet fan-out only {speedup:.1f}x faster than {len(companies)} "
        f"cold invocations ({cold_seconds:.3f}s vs {warm_seconds:.3f}s); the "
        f">= {MIN_SPEEDUP:.0f}x bar is the registry's reason to exist"
    )

    write_bench_json(
        "a8_fleet_queries",
        {
            "companies": len(companies),
            "workers": FLEET_WORKERS,
            "rounds": ROUNDS,
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SPEEDUP,
            "mint_seconds": round(mint_report.seconds, 6),
        },
    )

    # Steady-state number for regression tracking: the warm fan-out.
    benchmark.pedantic(warm, rounds=ROUNDS, iterations=1)
