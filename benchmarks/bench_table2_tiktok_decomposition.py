"""Table 2 — TikTok policy statements decomposed into multiple edges.

Regenerates the paper's per-statement decomposition: one account-creation
compound, one ten-item profile enumeration, one conditional contact-finding
statement.  Asserts the multi-edge counts the paper demonstrates (5, 10,
and 6 edges respectively as minimums).
"""

from conftest import print_table

from repro.corpus import TIKTAK_SHOWCASE


def test_table2_decomposition(benchmark, pipeline):
    runner = pipeline.runner
    rows = []
    all_practices = []
    for statement, min_edges in TIKTAK_SHOWCASE:
        practices = runner.extract_parameters(statement, "TikTak")
        all_practices.append((statement, min_edges, practices))
        rows.append([statement[:52] + "...", min_edges, len(practices)])

    print_table(
        "Table 2: TikTak statements decomposed into semantic edges",
        ["Policy statement", "paper#", "measured#"],
        rows,
    )
    for statement, _min, practices in all_practices:
        print(f"\n  {statement[:70]}...")
        for p in practices:
            arrow = f"    [{p.sender}] -{p.action}-> [{p.data_type}]"
            if p.receiver:
                arrow += f" (to {p.receiver})"
            print(arrow)

    for statement, min_edges, practices in all_practices:
        assert len(practices) >= min_edges, statement

    # Enumerations expand item-per-item (the paper's ten profile fields).
    _stmt, _n, profile = all_practices[1]
    assert len({p.data_type for p in profile}) >= 10

    # Conditional collection keeps the user-choice condition on every edge.
    _stmt, _n, contacts = all_practices[2]
    assert all(p.condition for p in contacts if p.sender == "TikTak")

    # Benchmark single-statement extraction through the uncached backend.
    from repro.llm.simulated import extract_practices

    statement = TIKTAK_SHOWCASE[2][0]
    benchmark(extract_practices, statement, "TikTak")
