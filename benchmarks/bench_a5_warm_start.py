"""A5 — warm start: loading a snapshot beats re-extracting the policy.

The snapshot store exists so a restarted service does not pay Phase 1+2
again.  This bench commits the TikTok- and Meta-scale models once, then
compares a cold ``process()`` against ``SnapshotStore.load()`` (which
includes journal recovery, hash verification of every artifact, and the
structural replay).  Asserts the load wins on both corpora and that the
loaded model is structurally audit-clean.
"""

import time

from conftest import print_table, write_bench_json

from repro import PolicyPipeline
from repro.corpus import metabook_policy, tiktak_policy
from repro.store import SnapshotStore, audit_structure


def test_a5_warm_start(tmp_path, benchmark):
    corpora = [
        ("tiktak", tiktak_policy().text),
        ("metabook", metabook_policy().text),
    ]
    rows = []
    speedups = []
    stores = {}
    for name, text in corpora:
        cold = PolicyPipeline()
        start = time.perf_counter()
        model = cold.process(text)
        process_seconds = time.perf_counter() - start

        store = SnapshotStore(tmp_path / name)
        start = time.perf_counter()
        store.commit(model)
        commit_seconds = time.perf_counter() - start
        stores[name] = store

        start = time.perf_counter()
        result = store.load()
        load_seconds = time.perf_counter() - start

        assert result.clean
        assert audit_structure(result.model).passed
        assert len(result.model.graph.edges()) == len(model.graph.edges())

        speedup = process_seconds / load_seconds
        speedups.append((name, process_seconds, load_seconds, speedup))
        rows.append(
            [
                name,
                len(model.extraction.segments),
                f"{process_seconds:.2f}",
                f"{commit_seconds:.2f}",
                f"{load_seconds:.2f}",
                f"{speedup:.1f}x",
            ]
        )

    print_table(
        "A5: cold extraction vs snapshot warm start",
        ["corpus", "segments", "process s", "commit s", "load s", "speedup"],
        rows,
    )

    for name, process_seconds, load_seconds, speedup in speedups:
        assert load_seconds < process_seconds, (
            f"{name}: snapshot load ({load_seconds:.2f}s) should beat "
            f"re-extraction ({process_seconds:.2f}s)"
        )

    write_bench_json(
        "a5_warm_start",
        {
            name: {
                "process_seconds": round(process_seconds, 6),
                "load_seconds": round(load_seconds, 6),
                "speedup": round(speedup, 2),
            }
            for name, process_seconds, load_seconds, speedup in speedups
        },
    )

    # Steady-state warm start on the biggest corpus: verified load only.
    benchmark.pedantic(
        stores["tiktak"].load, rounds=3, warmup_rounds=1
    )
